// Package wal makes pfaird's tenant state durable: a length-prefixed,
// CRC-checked append log of tenant lifecycle and dispatch records, plus
// atomically-replaced snapshots, so a restarted server recovers by loading
// the latest snapshot and replaying the log tail. Because every tenant
// mutation is journaled before it is applied and the online executive is
// deterministic, the durable record prefix fully determines the recovered
// state — including the per-tenant dispatch log the `?from` stream replay
// serves — which is what keeps Theorem 3's tardiness bound meaningful
// across a crash.
//
// # On-disk layout
//
// A data directory holds at most one snapshot and one or more segments:
//
//	snapshot.json         {"lsn":N,"crc":C,"payload":...}   (atomic rename)
//	wal-<firstLSN>.log    frames: | len u32 | crc32 u32 | payload (JSON) |
//
// Every record carries a monotonically increasing LSN. Recovery reads the
// snapshot (records with LSN ≤ snapshot LSN are superseded by it), then
// scans segments in LSN order, stopping a segment at the first torn or
// corrupt frame: a partial write at the crash point truncates the tail, it
// is never fatal. Compact writes a new snapshot, rolls to a fresh segment
// and deletes the old ones; a crash anywhere in that sequence is safe
// because stale segments only hold records the snapshot already covers.
//
// # Durability model
//
// Appending is a two-step pipeline. The enqueue (AppendAsync/AppendBatch)
// assigns the LSN and writes the frame under the log's mutex — cheap, no
// syscall beyond the buffered write. Durability is a separate Wait on the
// returned Commit: the first waiter becomes the fsync leader, releases the
// mutex for the syscall, and its one fsync covers every record written
// before it — all followers queued behind share that sync (leader/follower
// group commit, the etcd/RocksDB write-group shape). With FsyncEvery == 1
// every Wait is durable before it returns; with FsyncEvery > 1 Wait acks
// immediately and the fsync happens once per batch (so a crash can lose up
// to one batch of acknowledged records — never reorder them, and never
// corrupt the surviving prefix), with FsyncMaxDelay bounding how long a
// final partial batch can sit exposed. The first write or sync error
// wedges the log (ErrWedged): all further appends fail, so the in-memory
// state can never silently run ahead of what a recovery could rebuild.
package wal

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	iofs "io/fs"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"
)

// Record ops. Everything except OpDispatch is a command: replaying the
// command sequence through the (deterministic) service rebuilds the exact
// tenant state, including the dispatch logs. OpDispatch records are
// verification records — recovery checks the regenerated decisions against
// them and reports any mismatch — not state-bearing ones.
const (
	OpTenantCreate   = "tenant-create"
	OpTenantDelete   = "tenant-delete"
	OpTaskRegister   = "task-register"
	OpTaskUnregister = "task-unregister"
	OpJobSubmit      = "job-submit"
	OpAdvance        = "advance"
	OpDrain          = "drain"
	// OpResize records a capacity change: the tenant's processor count
	// moves to M (Mode "drain" marks a queued shrink that applies once
	// unregisters bring Σwt within the target). Journaled only for applied
	// or queued resizes — rejections leave no state and no record — so
	// replaying the command sequence reproduces the capacity history
	// exactly.
	OpResize   = "resize"
	OpDispatch = "dispatch"
	// OpTerm marks a leadership change: a promoted replica journals one
	// with its new term before accepting writes, making the promotion
	// durable and fencing the log against records from older leaders
	// (terms are non-decreasing in LSN order; AppendReplicated enforces
	// it). Not a command — it mutates no tenant state on replay.
	OpTerm = "term"
)

// Record is one journal entry. Fields beyond LSN/Op/Tenant are op-specific;
// rational times travel as exact strings in internal/rat syntax, matching
// the service's wire format.
type Record struct {
	LSN    uint64 `json:"lsn"`
	Op     string `json:"op"`
	Tenant string `json:"tenant,omitempty"`

	M      int    `json:"m,omitempty"`      // tenant-create / resize: processor count
	Policy string `json:"policy,omitempty"` // tenant-create: policy name
	Mode   string `json:"mode,omitempty"`   // resize: "drain" for a queued shrink

	Name      string `json:"name,omitempty"`      // task name
	E         int64  `json:"e,omitempty"`         // task-register: weight numerator
	P         int64  `json:"p,omitempty"`         // task-register: weight denominator
	At        string `json:"at,omitempty"`        // job-submit / advance: resolved absolute time
	Earliness int64  `json:"earliness,omitempty"` // job-submit: early-release slots

	DSeq   int64  `json:"dseq,omitempty"`   // dispatch: decision index within the tenant log
	Index  int64  `json:"index,omitempty"`  // dispatch: subtask index
	Finish string `json:"finish,omitempty"` // dispatch: completion time

	// Term is the leadership term the record was written under. Terms are
	// non-decreasing in LSN order; a replica refuses records whose term is
	// below the highest it has seen (stale-leader fencing).
	Term uint64 `json:"term,omitempty"`
	// Key is the client-supplied idempotency key of a job-submit. Replay
	// and replication carry it so a recovered or promoted node rebuilds
	// the same dedupe state the leader acked against.
	Key string `json:"key,omitempty"`
}

// IsCommand reports whether the record mutates state on replay (everything
// except dispatch verification records and term markers).
func (r Record) IsCommand() bool { return r.Op != OpDispatch && r.Op != OpTerm }

// ErrWedged is wrapped by every append after the log's first write or sync
// failure: the log refuses further mutations so recovered state can never
// diverge from what was applied in memory.
var ErrWedged = errors.New("wal: log failed; further appends refused")

// ErrStaleTerm is wrapped by AppendReplicated when a record carries a term
// below the log's current one: the sender is a deposed leader and must not
// extend this log.
var ErrStaleTerm = errors.New("wal: record term below the log's term; stale leader fenced")

// ErrCompacted is returned by a Reader whose cursor fell below the
// snapshot horizon: those records were folded into the snapshot and no
// longer exist as log frames. The caller re-bootstraps from the snapshot.
var ErrCompacted = errors.New("wal: requested LSN is below the snapshot horizon")

const (
	snapshotName = "snapshot.json"
	snapshotTmp  = "snapshot.tmp"
	segPrefix    = "wal-"
	segSuffix    = ".log"
	frameHeader  = 8       // u32 length + u32 crc
	maxPayload   = 1 << 20 // sanity bound on one record
	maxLSN       = 1 << 62 // LSNs beyond this are treated as corruption
	// maxPooledFrame bounds the encoding buffers the pool retains: a
	// rare giant batch should not pin its scratch space forever.
	maxPooledFrame = 64 << 10
)

// Commit is a durability ticket: AppendAsync and AppendBatch return one,
// and Wait blocks until the identified record — and, by write ordering,
// everything before it — is covered by an fsync per the log's policy. The
// zero Commit waits for nothing, so callers without a journal can pass it
// through unchanged.
type Commit struct {
	LSN uint64
}

// Timer is the handle Options.AfterFunc returns; *time.Timer satisfies it.
type Timer interface {
	Stop() bool
}

// Options configures Open.
type Options struct {
	// FS is the filesystem the log writes through; nil selects the real
	// one. Tests inject internal/faultfs here.
	FS FS
	// FsyncEvery group-commits: fsync once per this many appended records.
	// Values ≤ 1 sync every append (and make Wait a durability barrier).
	FsyncEvery int
	// SnapshotEvery makes ShouldCompact report true once this many records
	// have been appended since the last snapshot. 0 disables the hint
	// (Compact can still be called explicitly).
	SnapshotEvery int
	// FsyncMaxDelay bounds how long a written record may sit unsynced when
	// the FsyncEvery threshold has not been reached: a timer armed by the
	// first record of each unsynced batch forces the group fsync after
	// this delay, so a final partial batch no longer waits forever when
	// traffic stops. 0 disables the timer.
	FsyncMaxDelay time.Duration
	// AfterFunc schedules the FsyncMaxDelay callback; nil selects
	// time.AfterFunc. Tests inject a manually-fired timer so the
	// idle-flush path needs no sleeps.
	AfterFunc func(d time.Duration, f func()) Timer
	// Now supplies timestamps for Timings measurements; nil selects
	// time.Now. Tests inject a fake clock so the observed durations are
	// exact. Ignored when Timings is nil — an uninstrumented log never
	// reads the clock on the append path.
	Now func() time.Time
	// Timings, when non-nil, receives the journal's write-path latencies.
	Timings Timings
}

// Timings observes the journal's write-path latencies. Implementations
// must be safe for concurrent use and fast: the callbacks run under the
// log's lock, on the append hot path.
type Timings interface {
	// ObserveAppend sees the duration of one frame write (one append, or
	// one whole batch).
	ObserveAppend(d time.Duration)
	// ObserveFsync sees the duration of one fsync syscall.
	ObserveFsync(d time.Duration)
	// ObserveLogToFsync sees, for each record, the latency from its
	// append landing in the log to the group-commit fsync that made it
	// durable — the window in which an acknowledged record could still be
	// lost to a crash.
	ObserveLogToFsync(d time.Duration)
}

// Stats are the log's counters, exposed by pfaird's /metrics. All fields
// are monotonic except Unsynced and Wedged, which are point-in-time.
type Stats struct {
	Appends      uint64 // records appended
	Fsyncs       uint64 // group-commit syncs issued
	AppendErrors uint64 // appends refused (including post-wedge)
	Snapshots    uint64 // successful Compact calls
	Unsynced     uint64 // records written but not yet covered by an fsync
	Wedged       bool
}

// Recovery is what Open found on disk: the snapshot payload (nil if none)
// and the valid record tail to replay over it, in LSN order.
type Recovery struct {
	Snapshot    []byte
	SnapshotLSN uint64
	Records     []Record
	// Term is the highest leadership term found on disk (snapshot or
	// records); the reopened log continues under it.
	Term uint64
	// TruncatedBytes counts bytes discarded at torn or corrupt segment
	// tails — expected after a crash, reported for observability.
	TruncatedBytes int64
	Segments       int
}

// pendingStamp remembers when an unsynced record's write landed, so the
// group-commit fsync can report its log→fsync latency. Stamps are kept in
// LSN order; the leader drains exactly the prefix its sync covered.
type pendingStamp struct {
	lsn uint64
	at  time.Time
}

// Log is an append-only record journal over one data directory. All
// methods are safe for concurrent use.
type Log struct {
	dir        string
	fs         FS
	fsyncEvery int
	snapEvery  int
	maxDelay   time.Duration
	afterFunc  func(d time.Duration, f func()) Timer
	now        func() time.Time
	timings    Timings

	mu sync.Mutex
	// commit signals durability progress: leaderSyncLocked broadcasts when
	// a sync completes (or wedges), waking followers blocked in
	// syncToLocked.
	commit     *sync.Cond
	f          File
	seg        string // active segment file name
	nextLSN    uint64
	writtenLSN uint64 // highest LSN whose frame write succeeded
	durableLSN uint64 // highest LSN covered by a completed fsync
	snapLSN    uint64 // highest LSN covered by the on-disk snapshot
	term       uint64 // current leadership term, stamped into appends
	syncing    bool   // a leader is inside the fsync syscall, mutex dropped
	sinceSnap  int
	timerArmed bool
	timer      Timer
	pendingAt  []pendingStamp // empty (and untouched) when timings is nil
	wedged     error
	closed     bool
	st         Stats
}

// frameBuf is a reusable frame-encoding scratch: one buffer plus a JSON
// encoder bound to it, pooled so the append hot path allocates neither per
// record.
type frameBuf struct {
	buf bytes.Buffer
	enc *json.Encoder
}

var framePool = sync.Pool{New: func() any {
	fb := &frameBuf{}
	fb.enc = json.NewEncoder(&fb.buf)
	return fb
}}

func getFrameBuf() *frameBuf { return framePool.Get().(*frameBuf) }

func putFrameBuf(fb *frameBuf) {
	if fb.buf.Cap() > maxPooledFrame {
		return
	}
	fb.buf.Reset()
	framePool.Put(fb)
}

// encodeFrame appends one framed record to fb: 8-byte header reserved
// first, JSON payload encoded in place, then length and CRC backfilled.
// On error fb is restored to its previous length.
func encodeFrame(fb *frameBuf, r *Record) error {
	start := fb.buf.Len()
	var header [frameHeader]byte
	fb.buf.Write(header[:])
	if err := fb.enc.Encode(r); err != nil {
		fb.buf.Truncate(start)
		return err
	}
	fb.buf.Truncate(fb.buf.Len() - 1) // Encode's trailing newline is not part of the frame
	payload := fb.buf.Bytes()[start+frameHeader:]
	if len(payload) > maxPayload {
		fb.buf.Truncate(start)
		return fmt.Errorf("wal: record of %d bytes exceeds the %d-byte bound", len(payload), maxPayload)
	}
	hdr := fb.buf.Bytes()[start : start+frameHeader]
	binary.LittleEndian.PutUint32(hdr[0:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:], crc32.ChecksumIEEE(payload))
	return nil
}

// Open recovers whatever the directory holds (creating it if needed) and
// returns a log ready to append, plus the recovered snapshot and record
// tail. Torn or corrupt segment tails are truncated, never fatal; only a
// corrupt snapshot — which is written atomically and so indicates real
// damage rather than a crash — or an environmental error fails Open.
func Open(dir string, opts Options) (*Log, *Recovery, error) {
	fs := opts.FS
	if fs == nil {
		fs = OSFS{}
	}
	if err := fs.MkdirAll(dir); err != nil {
		return nil, nil, err
	}
	rec := &Recovery{}
	names, err := fs.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	have := map[string]bool{}
	var segs []string
	for _, n := range names {
		have[n] = true
		if strings.HasPrefix(n, segPrefix) && strings.HasSuffix(n, segSuffix) {
			segs = append(segs, n)
		}
	}
	sort.Strings(segs) // zero-padded hex first-LSN names sort in LSN order

	if have[snapshotName] {
		payload, lsn, term, err := readSnapshot(fs, filepath.Join(dir, snapshotName))
		if err != nil {
			return nil, nil, err
		}
		rec.Snapshot = payload
		rec.SnapshotLSN = lsn
		rec.Term = term
	}

	lastLSN := rec.SnapshotLSN
	for _, name := range segs {
		recs, trunc, err := readSegment(fs, filepath.Join(dir, name))
		if err != nil {
			return nil, nil, err
		}
		rec.TruncatedBytes += trunc
		rec.Segments++
		for _, r := range recs {
			if r.LSN <= lastLSN {
				continue // superseded by the snapshot, or a stale duplicate
			}
			rec.Records = append(rec.Records, r)
			lastLSN = r.LSN
			if r.Term > rec.Term {
				rec.Term = r.Term
			}
		}
	}

	l := &Log{
		dir:        dir,
		fs:         fs,
		fsyncEvery: opts.FsyncEvery,
		snapEvery:  opts.SnapshotEvery,
		maxDelay:   opts.FsyncMaxDelay,
		afterFunc:  opts.AfterFunc,
		now:        opts.Now,
		timings:    opts.Timings,
		nextLSN:    lastLSN + 1,
		writtenLSN: lastLSN,
		durableLSN: lastLSN,
		snapLSN:    rec.SnapshotLSN,
		term:       rec.Term,
		sinceSnap:  len(rec.Records),
	}
	l.commit = sync.NewCond(&l.mu)
	if l.now == nil {
		l.now = time.Now
	}
	if l.afterFunc == nil {
		l.afterFunc = func(d time.Duration, f func()) Timer { return time.AfterFunc(d, f) }
	}
	if l.fsyncEvery < 1 {
		l.fsyncEvery = 1
	}
	if err := l.openSegment(); err != nil {
		return nil, nil, err
	}
	return l, rec, nil
}

// openSegment starts a fresh active segment named by the next LSN. Called
// with l.mu held (or before the log is shared), with no unsynced records
// and no sync in flight.
func (l *Log) openSegment() error {
	name := fmt.Sprintf("%s%016x%s", segPrefix, l.nextLSN, segSuffix)
	f, err := l.fs.Create(filepath.Join(l.dir, name))
	if err != nil {
		return err
	}
	if err := l.fs.SyncDir(l.dir); err != nil {
		f.Close()
		return err
	}
	if l.f != nil {
		l.f.Close()
	}
	l.f = f
	l.seg = name
	return nil
}

// unsyncedLocked is the count of written-but-unsynced records.
func (l *Log) unsyncedLocked() int { return int(l.writtenLSN - l.durableLSN) }

// appendableLocked refuses appends on a wedged or closed log, counting the
// refusal.
func (l *Log) appendableLocked() error {
	if l.wedged != nil {
		l.st.AppendErrors++
		return l.wedged
	}
	if l.closed {
		l.st.AppendErrors++
		return fmt.Errorf("wal: log closed")
	}
	return nil
}

// Append journals one record, assigning its LSN, and applies the log's
// durability policy before returning (the PR-3 behavior: with FsyncEvery
// == 1 the record is fsync-covered on return; above that the fsync is
// batched). It is AppendAsync + Wait — callers that can ack later use
// those directly to overlap work with the fsync. Any I/O failure wedges
// the log: the error (wrapping ErrWedged) is returned now and by every
// later append.
func (l *Log) Append(r Record) (uint64, error) {
	c, err := l.AppendAsync(r)
	if err != nil {
		return 0, err
	}
	if err := l.Wait(c); err != nil {
		l.mu.Lock()
		l.st.AppendErrors++
		l.mu.Unlock()
		return 0, err
	}
	return c.LSN, nil
}

// AppendAsync journals one record without waiting for durability: the
// frame is encoded and written to the active segment under the log's
// mutex, and the returned Commit is handed to Wait when the caller is
// ready to ack. Splitting the enqueue from the wait is what lets the
// server release the tenant lock before the fsync.
func (l *Log) AppendAsync(r Record) (Commit, error) {
	fb := getFrameBuf()
	defer putFrameBuf(fb)
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.appendableLocked(); err != nil {
		return Commit{}, err
	}
	r.LSN = l.nextLSN
	r.Term = l.term
	if err := encodeFrame(fb, &r); err != nil {
		return Commit{}, err
	}
	if err := l.writeLocked(fb, 1); err != nil {
		return Commit{}, err
	}
	return Commit{LSN: r.LSN}, nil
}

// AppendReplicated journals a record shipped from a leader, preserving its
// LSN and term instead of assigning new ones. The record must exactly
// continue the local log (LSN == next), and its term must not regress —
// ErrStaleTerm fences appends from a deposed leader after a promotion has
// raised the local term. On success the log's term advances to the
// record's.
func (l *Log) AppendReplicated(r Record) (Commit, error) {
	fb := getFrameBuf()
	defer putFrameBuf(fb)
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.appendableLocked(); err != nil {
		return Commit{}, err
	}
	if r.LSN != l.nextLSN {
		l.st.AppendErrors++
		return Commit{}, fmt.Errorf("wal: replicated record LSN %d does not continue the log (next %d)", r.LSN, l.nextLSN)
	}
	if r.Term < l.term {
		l.st.AppendErrors++
		return Commit{}, fmt.Errorf("%w: record term %d < log term %d", ErrStaleTerm, r.Term, l.term)
	}
	if err := encodeFrame(fb, &r); err != nil {
		return Commit{}, err
	}
	if err := l.writeLocked(fb, 1); err != nil {
		return Commit{}, err
	}
	l.term = r.Term
	return Commit{LSN: r.LSN}, nil
}

// AppendBatch journals records as one contiguous frame group: LSNs are
// assigned in order (written back into rs), all frames are encoded into
// one buffer and land in a single segment write under one mutex
// acquisition. The returned Commit covers the last record, so one Wait
// acks the whole group after one fsync. An empty batch is a no-op.
//
// The group is not crash-atomic: a torn write can leave a prefix of the
// batch on disk. That is safe for the service because the write error
// wedges the log before any Wait can succeed — the batch is never
// acknowledged, and replaying a prefix of pre-validated commands is
// exactly the un-acked-suffix case recovery already tolerates.
func (l *Log) AppendBatch(rs []Record) (Commit, error) {
	if len(rs) == 0 {
		return Commit{}, nil
	}
	fb := getFrameBuf()
	defer putFrameBuf(fb)
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.appendableLocked(); err != nil {
		return Commit{}, err
	}
	for i := range rs {
		rs[i].LSN = l.nextLSN + uint64(i)
		rs[i].Term = l.term
		if err := encodeFrame(fb, &rs[i]); err != nil {
			return Commit{}, err
		}
	}
	if err := l.writeLocked(fb, len(rs)); err != nil {
		return Commit{}, err
	}
	return Commit{LSN: l.writtenLSN}, nil
}

// writeLocked writes fb's n encoded frames (LSNs nextLSN..nextLSN+n-1) to
// the active segment and publishes them as written, arming the idle-flush
// timer. Called with l.mu held after appendableLocked and encoding.
func (l *Log) writeLocked(fb *frameBuf, n int) error {
	var t0 time.Time
	if l.timings != nil {
		t0 = l.now()
	}
	if _, err := l.f.Write(fb.buf.Bytes()); err != nil {
		l.wedge(err)
		l.st.AppendErrors++
		return l.wedged
	}
	if l.timings != nil {
		t1 := l.now()
		l.timings.ObserveAppend(t1.Sub(t0))
		for i := 0; i < n; i++ {
			l.pendingAt = append(l.pendingAt, pendingStamp{lsn: l.nextLSN + uint64(i), at: t1})
		}
	}
	l.nextLSN += uint64(n)
	l.writtenLSN = l.nextLSN - 1
	l.st.Appends += uint64(n)
	l.sinceSnap += n
	if l.maxDelay > 0 && !l.timerArmed {
		l.timerArmed = true
		l.timer = l.afterFunc(l.maxDelay, l.flushTimerFired)
	}
	return nil
}

// Wait blocks until c's record is covered per the log's policy:
//
//   - FsyncEvery == 1 (durable acks): wait until an fsync covers c. The
//     first waiter becomes the leader — it issues one fsync for every
//     record written so far, with the mutex released during the syscall
//     so appends keep flowing — and every waiter queued behind shares
//     that sync.
//   - FsyncEvery > 1: acks are group-committed; Wait returns immediately
//     unless the unsynced batch has reached the threshold, in which case
//     this waiter drives the sync (the PR-3 inline fsync, moved off the
//     append path). A crash can still lose up to one batch of
//     acknowledged records, exactly as before.
//
// The zero Commit returns nil immediately.
func (l *Log) Wait(c Commit) error {
	if c.LSN == 0 {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.fsyncEvery > 1 {
		if l.unsyncedLocked() < l.fsyncEvery {
			return nil
		}
		return l.syncToLocked(l.writtenLSN)
	}
	return l.syncToLocked(c.LSN)
}

// syncToLocked blocks until durableLSN ≥ target, becoming the fsync
// leader if nobody is syncing, otherwise following the in-flight sync —
// and re-checking after it, since that sync may cover only an earlier
// prefix. Called with l.mu held; the mutex is released while following
// and while leading the syscall.
func (l *Log) syncToLocked(target uint64) error {
	for l.durableLSN < target {
		if l.wedged != nil {
			return l.wedged
		}
		if l.syncing {
			l.commit.Wait()
			continue
		}
		l.leaderSyncLocked()
	}
	return nil
}

// leaderSyncLocked performs one group-commit fsync as the leader: it
// captures the written high-water mark, releases l.mu for the syscall so
// appends and new waiters keep flowing, then reacquires it to publish
// durability and wake the followers. Called with l.mu held, !l.syncing,
// not wedged, and durableLSN < writtenLSN.
func (l *Log) leaderSyncLocked() {
	end := l.writtenLSN
	f := l.f
	l.syncing = true
	var s0 time.Time
	if l.timings != nil {
		s0 = l.now()
	}
	l.mu.Unlock()
	err := f.Sync()
	l.mu.Lock()
	l.syncing = false
	if err != nil {
		l.wedge(err)
	} else {
		if end > l.durableLSN {
			l.durableLSN = end
		}
		l.st.Fsyncs++
		if l.timings != nil {
			s1 := l.now()
			l.timings.ObserveFsync(s1.Sub(s0))
			i := 0
			for ; i < len(l.pendingAt) && l.pendingAt[i].lsn <= end; i++ {
				l.timings.ObserveLogToFsync(s1.Sub(l.pendingAt[i].at))
			}
			l.pendingAt = l.pendingAt[:copy(l.pendingAt, l.pendingAt[i:])]
		}
	}
	l.commit.Broadcast()
}

// flushTimerFired is the FsyncMaxDelay callback: it syncs whatever is
// still unsynced (a no-op if a threshold sync, an explicit Sync, or a
// durable-ack leader got there first). The next append re-arms the timer,
// so each unsynced batch gets one bounded deadline.
func (l *Log) flushTimerFired() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.timerArmed = false
	if l.closed || l.wedged != nil || l.unsyncedLocked() == 0 {
		return
	}
	_ = l.syncToLocked(l.writtenLSN) // a failure wedges the log; nothing more to report here
}

func (l *Log) wedge(err error) {
	if l.wedged == nil {
		l.wedged = fmt.Errorf("%w: %v", ErrWedged, err)
	}
	if l.commit != nil {
		l.commit.Broadcast()
	}
}

// Sync forces out any unsynced appends (the partial group-commit batch).
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.wedged != nil {
		return l.wedged
	}
	return l.syncToLocked(l.writtenLSN)
}

// ShouldCompact hints that enough records accumulated since the last
// snapshot to be worth folding into a new one.
func (l *Log) ShouldCompact() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.snapEvery > 0 && l.sinceSnap >= l.snapEvery && l.wedged == nil && !l.closed
}

// Compact atomically installs payload as the new snapshot, covering every
// record appended so far, then rolls to a fresh segment and removes the
// stale ones. The caller must guarantee payload reflects exactly the state
// after the last appended record (pfaird quiesces mutations around it).
func (l *Log) Compact(payload []byte) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.wedged != nil {
		return l.wedged
	}
	if l.closed {
		return fmt.Errorf("wal: log closed")
	}
	// Everything written must be durable — and no leader mid-syscall on
	// the segment we are about to roll — before the snapshot claims to
	// cover it. The loop re-checks because both waits release the mutex.
	for {
		if err := l.syncToLocked(l.writtenLSN); err != nil {
			return err
		}
		if !l.syncing && l.durableLSN == l.writtenLSN {
			break
		}
		l.commit.Wait()
	}
	sf := snapshotFile{LSN: l.nextLSN - 1, Term: l.term, CRC: crc32.ChecksumIEEE(payload), Payload: payload}
	if err := l.writeSnapshotLocked(sf); err != nil {
		return err
	}
	// The snapshot is durable; roll the segment. Failures from here leave
	// stale segments behind, which recovery skips by LSN — never unsafe.
	if err := l.openSegment(); err != nil {
		return err
	}
	l.removeStaleSegmentsLocked()
	l.snapLSN = sf.LSN
	l.sinceSnap = 0
	l.st.Snapshots++
	return nil
}

// writeSnapshotLocked durably installs sf as the directory's snapshot via
// the write-tmp / fsync / rename / fsync-dir sequence. Called with l.mu
// held.
func (l *Log) writeSnapshotLocked(sf snapshotFile) error {
	buf, err := json.Marshal(sf)
	if err != nil {
		return err
	}
	tmp := filepath.Join(l.dir, snapshotTmp)
	f, err := l.fs.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		l.fs.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		l.fs.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		l.fs.Remove(tmp)
		return err
	}
	if err := l.fs.Rename(tmp, filepath.Join(l.dir, snapshotName)); err != nil {
		l.fs.Remove(tmp)
		return err
	}
	return l.fs.SyncDir(l.dir)
}

// removeStaleSegmentsLocked deletes every segment other than the active
// one; best-effort, since recovery skips stale records by LSN anyway.
func (l *Log) removeStaleSegmentsLocked() {
	if names, err := l.fs.ReadDir(l.dir); err == nil {
		for _, n := range names {
			if strings.HasPrefix(n, segPrefix) && strings.HasSuffix(n, segSuffix) && n != l.seg {
				l.fs.Remove(filepath.Join(l.dir, n))
			}
		}
	}
}

// InstallSnapshot primes the log with a snapshot shipped from a leader:
// the payload becomes the on-disk snapshot at lsn/term and the log
// restarts at lsn+1, discarding any local segments (all of which must be
// at or below lsn — installing a snapshot never rewinds a log). A
// follower bootstraps by opening an empty directory, installing the
// leader's snapshot, and reopening through the normal recovery path.
func (l *Log) InstallSnapshot(payload []byte, lsn, term uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.wedged != nil {
		return l.wedged
	}
	if l.closed {
		return fmt.Errorf("wal: log closed")
	}
	if l.writtenLSN > lsn {
		return fmt.Errorf("wal: refusing snapshot at LSN %d behind the local log at %d", lsn, l.writtenLSN)
	}
	if term < l.term {
		return fmt.Errorf("%w: snapshot term %d < log term %d", ErrStaleTerm, term, l.term)
	}
	sf := snapshotFile{LSN: lsn, Term: term, CRC: crc32.ChecksumIEEE(payload), Payload: payload}
	if err := l.writeSnapshotLocked(sf); err != nil {
		return err
	}
	l.nextLSN = lsn + 1
	l.writtenLSN = lsn
	l.durableLSN = lsn
	l.snapLSN = lsn
	l.term = term
	l.sinceSnap = 0
	if err := l.openSegment(); err != nil {
		return err
	}
	l.removeStaleSegmentsLocked()
	return nil
}

// Snapshot reads the current on-disk snapshot for serving to a
// bootstrapping follower. A directory without one returns a nil payload
// at LSN 0.
func (l *Log) Snapshot() (payload []byte, lsn, term uint64, err error) {
	l.mu.Lock()
	fs, path := l.fs, filepath.Join(l.dir, snapshotName)
	l.mu.Unlock()
	payload, lsn, term, err = readSnapshot(fs, path)
	if err != nil && errors.Is(err, iofs.ErrNotExist) {
		return nil, 0, 0, nil
	}
	return payload, lsn, term, err
}

// SetTerm raises the log's leadership term; later appends are stamped
// with it. Lowering the term is refused — terms only move forward.
func (l *Log) SetTerm(term uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if term < l.term {
		return fmt.Errorf("wal: cannot lower term %d to %d", l.term, term)
	}
	l.term = term
	return nil
}

// Term returns the log's current leadership term.
func (l *Log) Term() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.term
}

// DurableLSN is the highest LSN covered by a completed fsync — the
// replication horizon: a log reader never serves beyond it.
func (l *Log) DurableLSN() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.durableLSN
}

// WrittenLSN is the highest LSN whose frame write succeeded.
func (l *Log) WrittenLSN() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.writtenLSN
}

// SnapshotLSN is the highest LSN folded into the on-disk snapshot.
func (l *Log) SnapshotLSN() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.snapLSN
}

// Close flushes the group-commit batch and closes the active segment.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	if l.timer != nil {
		l.timer.Stop()
		l.timerArmed = false
	}
	err := func() error {
		if l.wedged != nil {
			return nil // already failed; nothing more to preserve
		}
		return l.syncToLocked(l.writtenLSN)
	}()
	// A leader may still be inside its syscall (it captured l.f before
	// releasing the mutex); wait it out so closing the file cannot race
	// the fsync.
	for l.syncing {
		l.commit.Wait()
	}
	if l.f != nil {
		if cerr := l.f.Close(); err == nil {
			err = cerr
		}
		l.f = nil
	}
	return err
}

// Fail permanently wedges the log. Callers use it when they discover,
// after a successful append, that the corresponding state change did not
// fully apply: refusing further appends keeps the journal from diverging
// from memory.
func (l *Log) Fail(err error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.wedge(err)
}

// Wedged reports whether the log has failed and refuses appends.
func (l *Log) Wedged() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.wedged != nil
}

// Stats returns a copy of the log's counters.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	st := l.st
	st.Unsynced = uint64(l.unsyncedLocked())
	st.Wedged = l.wedged != nil
	return st
}

type snapshotFile struct {
	LSN     uint64          `json:"lsn"`
	Term    uint64          `json:"term,omitempty"`
	CRC     uint32          `json:"crc"`
	Payload json.RawMessage `json:"payload"`
}

func readSnapshot(fs FS, path string) ([]byte, uint64, uint64, error) {
	f, err := fs.Open(path)
	if err != nil {
		return nil, 0, 0, err
	}
	defer f.Close()
	data, err := io.ReadAll(f)
	if err != nil {
		return nil, 0, 0, err
	}
	var sf snapshotFile
	if err := json.Unmarshal(data, &sf); err != nil {
		return nil, 0, 0, fmt.Errorf("wal: snapshot corrupt: %v", err)
	}
	if crc32.ChecksumIEEE(sf.Payload) != sf.CRC {
		return nil, 0, 0, fmt.Errorf("wal: snapshot CRC mismatch")
	}
	return sf.Payload, sf.LSN, sf.Term, nil
}

// readSegment decodes frames until the end of the file or the first torn
// or corrupt one; everything after that point is returned as the truncated
// byte count. Arbitrary bytes never produce an error (FuzzWALReplay pins
// this), only environmental failures do.
func readSegment(fs FS, path string) ([]Record, int64, error) {
	f, err := fs.Open(path)
	if err != nil {
		return nil, 0, err
	}
	defer f.Close()
	data, err := io.ReadAll(f)
	if err != nil {
		return nil, 0, err
	}
	var out []Record
	off := 0
	for {
		rest := len(data) - off
		if rest == 0 {
			return out, 0, nil
		}
		if rest < frameHeader {
			return out, int64(rest), nil
		}
		n := binary.LittleEndian.Uint32(data[off:])
		crc := binary.LittleEndian.Uint32(data[off+4:])
		if n == 0 || n > maxPayload || rest-frameHeader < int(n) {
			return out, int64(rest), nil
		}
		payload := data[off+frameHeader : off+frameHeader+int(n)]
		if crc32.ChecksumIEEE(payload) != crc {
			return out, int64(rest), nil
		}
		var r Record
		if json.Unmarshal(payload, &r) != nil || r.LSN >= maxLSN {
			return out, int64(rest), nil
		}
		out = append(out, r)
		off += frameHeader + int(n)
	}
}
