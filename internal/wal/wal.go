// Package wal makes pfaird's tenant state durable: a length-prefixed,
// CRC-checked append log of tenant lifecycle and dispatch records, plus
// atomically-replaced snapshots, so a restarted server recovers by loading
// the latest snapshot and replaying the log tail. Because every tenant
// mutation is journaled before it is applied and the online executive is
// deterministic, the durable record prefix fully determines the recovered
// state — including the per-tenant dispatch log the `?from` stream replay
// serves — which is what keeps Theorem 3's tardiness bound meaningful
// across a crash.
//
// # On-disk layout
//
// A data directory holds at most one snapshot and one or more segments:
//
//	snapshot.json         {"lsn":N,"crc":C,"payload":...}   (atomic rename)
//	wal-<firstLSN>.log    frames: | len u32 | crc32 u32 | payload (JSON) |
//
// Every record carries a monotonically increasing LSN. Recovery reads the
// snapshot (records with LSN ≤ snapshot LSN are superseded by it), then
// scans segments in LSN order, stopping a segment at the first torn or
// corrupt frame: a partial write at the crash point truncates the tail, it
// is never fatal. Compact writes a new snapshot, rolls to a fresh segment
// and deletes the old ones; a crash anywhere in that sequence is safe
// because stale segments only hold records the snapshot already covers.
//
// # Durability model
//
// Append is group-committed: the frame is written immediately but fsync'd
// only every Options.FsyncEvery records, so a crash can lose up to one
// batch of acknowledged records — never reorder them, and never corrupt
// the surviving prefix. The first write or sync error wedges the log
// (ErrWedged): all further appends fail, so the in-memory state can never
// silently run ahead of what a recovery could rebuild.
package wal

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"
)

// Record ops. Everything except OpDispatch is a command: replaying the
// command sequence through the (deterministic) service rebuilds the exact
// tenant state, including the dispatch logs. OpDispatch records are
// verification records — recovery checks the regenerated decisions against
// them and reports any mismatch — not state-bearing ones.
const (
	OpTenantCreate   = "tenant-create"
	OpTenantDelete   = "tenant-delete"
	OpTaskRegister   = "task-register"
	OpTaskUnregister = "task-unregister"
	OpJobSubmit      = "job-submit"
	OpAdvance        = "advance"
	OpDrain          = "drain"
	OpDispatch       = "dispatch"
)

// Record is one journal entry. Fields beyond LSN/Op/Tenant are op-specific;
// rational times travel as exact strings in internal/rat syntax, matching
// the service's wire format.
type Record struct {
	LSN    uint64 `json:"lsn"`
	Op     string `json:"op"`
	Tenant string `json:"tenant,omitempty"`

	M      int    `json:"m,omitempty"`      // tenant-create: processor count
	Policy string `json:"policy,omitempty"` // tenant-create: policy name

	Name      string `json:"name,omitempty"`      // task name
	E         int64  `json:"e,omitempty"`         // task-register: weight numerator
	P         int64  `json:"p,omitempty"`         // task-register: weight denominator
	At        string `json:"at,omitempty"`        // job-submit / advance: resolved absolute time
	Earliness int64  `json:"earliness,omitempty"` // job-submit: early-release slots

	DSeq   int64  `json:"dseq,omitempty"`   // dispatch: decision index within the tenant log
	Index  int64  `json:"index,omitempty"`  // dispatch: subtask index
	Finish string `json:"finish,omitempty"` // dispatch: completion time
}

// IsCommand reports whether the record mutates state on replay (everything
// except dispatch verification records).
func (r Record) IsCommand() bool { return r.Op != OpDispatch }

// ErrWedged is wrapped by every append after the log's first write or sync
// failure: the log refuses further mutations so recovered state can never
// diverge from what was applied in memory.
var ErrWedged = errors.New("wal: log failed; further appends refused")

const (
	snapshotName = "snapshot.json"
	snapshotTmp  = "snapshot.tmp"
	segPrefix    = "wal-"
	segSuffix    = ".log"
	frameHeader  = 8       // u32 length + u32 crc
	maxPayload   = 1 << 20 // sanity bound on one record
	maxLSN       = 1 << 62 // LSNs beyond this are treated as corruption
)

// Options configures Open.
type Options struct {
	// FS is the filesystem the log writes through; nil selects the real
	// one. Tests inject internal/faultfs here.
	FS FS
	// FsyncEvery group-commits: fsync once per this many appended records.
	// Values ≤ 1 sync every append.
	FsyncEvery int
	// SnapshotEvery makes ShouldCompact report true once this many records
	// have been appended since the last snapshot. 0 disables the hint
	// (Compact can still be called explicitly).
	SnapshotEvery int
	// Now supplies timestamps for Timings measurements; nil selects
	// time.Now. Tests inject a fake clock so the observed durations are
	// exact. Ignored when Timings is nil — an uninstrumented log never
	// reads the clock on the append path.
	Now func() time.Time
	// Timings, when non-nil, receives the journal's write-path latencies.
	Timings Timings
}

// Timings observes the journal's write-path latencies. Implementations
// must be safe for concurrent use and fast: the callbacks run under the
// log's lock, on the append hot path.
type Timings interface {
	// ObserveAppend sees the duration of one frame write.
	ObserveAppend(d time.Duration)
	// ObserveFsync sees the duration of one fsync syscall.
	ObserveFsync(d time.Duration)
	// ObserveLogToFsync sees, for each record, the latency from its
	// append landing in the log to the group-commit fsync that made it
	// durable — the window in which an acknowledged record could still be
	// lost to a crash.
	ObserveLogToFsync(d time.Duration)
}

// Stats are the log's monotonic counters, exposed by pfaird's /metrics.
type Stats struct {
	Appends      uint64 // records appended
	Fsyncs       uint64 // group-commit syncs issued
	AppendErrors uint64 // appends refused (including post-wedge)
	Snapshots    uint64 // successful Compact calls
	Wedged       bool
}

// Recovery is what Open found on disk: the snapshot payload (nil if none)
// and the valid record tail to replay over it, in LSN order.
type Recovery struct {
	Snapshot    []byte
	SnapshotLSN uint64
	Records     []Record
	// TruncatedBytes counts bytes discarded at torn or corrupt segment
	// tails — expected after a crash, reported for observability.
	TruncatedBytes int64
	Segments       int
}

// Log is an append-only record journal over one data directory. All
// methods are safe for concurrent use.
type Log struct {
	dir        string
	fs         FS
	fsyncEvery int
	snapEvery  int
	now        func() time.Time
	timings    Timings

	mu        sync.Mutex
	f         File
	seg       string // active segment file name
	nextLSN   uint64
	unsynced  int
	sinceSnap int
	// pendingAt holds the append instant of each unsynced record, so the
	// group-commit fsync can report every record's log→fsync latency.
	// Empty (and untouched) when timings is nil.
	pendingAt []time.Time
	wedged    error
	closed    bool
	st        Stats
}

// Open recovers whatever the directory holds (creating it if needed) and
// returns a log ready to append, plus the recovered snapshot and record
// tail. Torn or corrupt segment tails are truncated, never fatal; only a
// corrupt snapshot — which is written atomically and so indicates real
// damage rather than a crash — or an environmental error fails Open.
func Open(dir string, opts Options) (*Log, *Recovery, error) {
	fs := opts.FS
	if fs == nil {
		fs = OSFS{}
	}
	if err := fs.MkdirAll(dir); err != nil {
		return nil, nil, err
	}
	rec := &Recovery{}
	names, err := fs.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	have := map[string]bool{}
	var segs []string
	for _, n := range names {
		have[n] = true
		if strings.HasPrefix(n, segPrefix) && strings.HasSuffix(n, segSuffix) {
			segs = append(segs, n)
		}
	}
	sort.Strings(segs) // zero-padded hex first-LSN names sort in LSN order

	if have[snapshotName] {
		payload, lsn, err := readSnapshot(fs, filepath.Join(dir, snapshotName))
		if err != nil {
			return nil, nil, err
		}
		rec.Snapshot = payload
		rec.SnapshotLSN = lsn
	}

	lastLSN := rec.SnapshotLSN
	for _, name := range segs {
		recs, trunc, err := readSegment(fs, filepath.Join(dir, name))
		if err != nil {
			return nil, nil, err
		}
		rec.TruncatedBytes += trunc
		rec.Segments++
		for _, r := range recs {
			if r.LSN <= lastLSN {
				continue // superseded by the snapshot, or a stale duplicate
			}
			rec.Records = append(rec.Records, r)
			lastLSN = r.LSN
		}
	}

	l := &Log{
		dir:        dir,
		fs:         fs,
		fsyncEvery: opts.FsyncEvery,
		snapEvery:  opts.SnapshotEvery,
		now:        opts.Now,
		timings:    opts.Timings,
		nextLSN:    lastLSN + 1,
		sinceSnap:  len(rec.Records),
	}
	if l.now == nil {
		l.now = time.Now
	}
	if l.fsyncEvery < 1 {
		l.fsyncEvery = 1
	}
	if err := l.openSegment(); err != nil {
		return nil, nil, err
	}
	return l, rec, nil
}

// openSegment starts a fresh active segment named by the next LSN. Called
// with l.mu held (or before the log is shared).
func (l *Log) openSegment() error {
	name := fmt.Sprintf("%s%016x%s", segPrefix, l.nextLSN, segSuffix)
	f, err := l.fs.Create(filepath.Join(l.dir, name))
	if err != nil {
		return err
	}
	if err := l.fs.SyncDir(l.dir); err != nil {
		f.Close()
		return err
	}
	if l.f != nil {
		l.f.Close()
	}
	l.f = f
	l.seg = name
	l.unsynced = 0
	return nil
}

// Append journals one record, assigning its LSN. The write lands
// immediately; the fsync is batched per Options.FsyncEvery (group commit).
// Any I/O failure wedges the log: the error (wrapping ErrWedged) is
// returned now and by every later append.
func (l *Log) Append(r Record) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.wedged != nil {
		l.st.AppendErrors++
		return 0, l.wedged
	}
	if l.closed {
		l.st.AppendErrors++
		return 0, fmt.Errorf("wal: log closed")
	}
	r.LSN = l.nextLSN
	payload, err := json.Marshal(r)
	if err != nil {
		return 0, err
	}
	if len(payload) > maxPayload {
		return 0, fmt.Errorf("wal: record of %d bytes exceeds the %d-byte bound", len(payload), maxPayload)
	}
	frame := make([]byte, frameHeader+len(payload))
	binary.LittleEndian.PutUint32(frame[0:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:], crc32.ChecksumIEEE(payload))
	copy(frame[frameHeader:], payload)
	var t0 time.Time
	if l.timings != nil {
		t0 = l.now()
	}
	if _, err := l.f.Write(frame); err != nil {
		l.wedge(err)
		l.st.AppendErrors++
		return 0, l.wedged
	}
	if l.timings != nil {
		t1 := l.now()
		l.timings.ObserveAppend(t1.Sub(t0))
		l.pendingAt = append(l.pendingAt, t1)
	}
	l.nextLSN++
	l.st.Appends++
	l.sinceSnap++
	l.unsynced++
	if l.unsynced >= l.fsyncEvery {
		if err := l.fsyncLocked(); err != nil {
			l.st.AppendErrors++
			return 0, err
		}
	}
	return r.LSN, nil
}

// fsyncLocked issues the group-commit fsync, observing its duration and
// every pending record's log→fsync latency. On failure it wedges the log
// and returns the wedged error. Called with l.mu held and unsynced > 0.
func (l *Log) fsyncLocked() error {
	var s0 time.Time
	if l.timings != nil {
		s0 = l.now()
	}
	if err := l.f.Sync(); err != nil {
		l.wedge(err)
		return l.wedged
	}
	l.unsynced = 0
	l.st.Fsyncs++
	if l.timings != nil {
		s1 := l.now()
		l.timings.ObserveFsync(s1.Sub(s0))
		for _, at := range l.pendingAt {
			l.timings.ObserveLogToFsync(s1.Sub(at))
		}
		l.pendingAt = l.pendingAt[:0]
	}
	return nil
}

func (l *Log) wedge(err error) {
	if l.wedged == nil {
		l.wedged = fmt.Errorf("%w: %v", ErrWedged, err)
	}
}

// Sync forces out any unsynced appends (the partial group-commit batch).
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.syncLocked()
}

func (l *Log) syncLocked() error {
	if l.wedged != nil {
		return l.wedged
	}
	if l.unsynced == 0 {
		return nil
	}
	return l.fsyncLocked()
}

// ShouldCompact hints that enough records accumulated since the last
// snapshot to be worth folding into a new one.
func (l *Log) ShouldCompact() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.snapEvery > 0 && l.sinceSnap >= l.snapEvery && l.wedged == nil && !l.closed
}

// Compact atomically installs payload as the new snapshot, covering every
// record appended so far, then rolls to a fresh segment and removes the
// stale ones. The caller must guarantee payload reflects exactly the state
// after the last appended record (pfaird quiesces mutations around it).
func (l *Log) Compact(payload []byte) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.wedged != nil {
		return l.wedged
	}
	if l.closed {
		return fmt.Errorf("wal: log closed")
	}
	if err := l.syncLocked(); err != nil {
		return err
	}
	sf := snapshotFile{LSN: l.nextLSN - 1, CRC: crc32.ChecksumIEEE(payload), Payload: payload}
	buf, err := json.Marshal(sf)
	if err != nil {
		return err
	}
	tmp := filepath.Join(l.dir, snapshotTmp)
	f, err := l.fs.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		l.fs.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		l.fs.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		l.fs.Remove(tmp)
		return err
	}
	if err := l.fs.Rename(tmp, filepath.Join(l.dir, snapshotName)); err != nil {
		l.fs.Remove(tmp)
		return err
	}
	if err := l.fs.SyncDir(l.dir); err != nil {
		return err
	}
	// The snapshot is durable; roll the segment. Failures from here leave
	// stale segments behind, which recovery skips by LSN — never unsafe.
	if err := l.openSegment(); err != nil {
		return err
	}
	if names, err := l.fs.ReadDir(l.dir); err == nil {
		for _, n := range names {
			if strings.HasPrefix(n, segPrefix) && strings.HasSuffix(n, segSuffix) && n != l.seg {
				l.fs.Remove(filepath.Join(l.dir, n))
			}
		}
	}
	l.sinceSnap = 0
	l.st.Snapshots++
	return nil
}

// Close flushes the group-commit batch and closes the active segment.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	err := func() error {
		if l.wedged != nil {
			return nil // already failed; nothing more to preserve
		}
		if l.unsynced > 0 {
			if serr := l.fsyncLocked(); serr != nil {
				return serr
			}
		}
		return nil
	}()
	if l.f != nil {
		if cerr := l.f.Close(); err == nil {
			err = cerr
		}
		l.f = nil
	}
	return err
}

// Fail permanently wedges the log. Callers use it when they discover,
// after a successful append, that the corresponding state change did not
// fully apply: refusing further appends keeps the journal from diverging
// from memory.
func (l *Log) Fail(err error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.wedge(err)
}

// Wedged reports whether the log has failed and refuses appends.
func (l *Log) Wedged() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.wedged != nil
}

// Stats returns a copy of the log's counters.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	st := l.st
	st.Wedged = l.wedged != nil
	return st
}

type snapshotFile struct {
	LSN     uint64          `json:"lsn"`
	CRC     uint32          `json:"crc"`
	Payload json.RawMessage `json:"payload"`
}

func readSnapshot(fs FS, path string) ([]byte, uint64, error) {
	f, err := fs.Open(path)
	if err != nil {
		return nil, 0, err
	}
	defer f.Close()
	data, err := io.ReadAll(f)
	if err != nil {
		return nil, 0, err
	}
	var sf snapshotFile
	if err := json.Unmarshal(data, &sf); err != nil {
		return nil, 0, fmt.Errorf("wal: snapshot corrupt: %v", err)
	}
	if crc32.ChecksumIEEE(sf.Payload) != sf.CRC {
		return nil, 0, fmt.Errorf("wal: snapshot CRC mismatch")
	}
	return sf.Payload, sf.LSN, nil
}

// readSegment decodes frames until the end of the file or the first torn
// or corrupt one; everything after that point is returned as the truncated
// byte count. Arbitrary bytes never produce an error (FuzzWALReplay pins
// this), only environmental failures do.
func readSegment(fs FS, path string) ([]Record, int64, error) {
	f, err := fs.Open(path)
	if err != nil {
		return nil, 0, err
	}
	defer f.Close()
	data, err := io.ReadAll(f)
	if err != nil {
		return nil, 0, err
	}
	var out []Record
	off := 0
	for {
		rest := len(data) - off
		if rest == 0 {
			return out, 0, nil
		}
		if rest < frameHeader {
			return out, int64(rest), nil
		}
		n := binary.LittleEndian.Uint32(data[off:])
		crc := binary.LittleEndian.Uint32(data[off+4:])
		if n == 0 || n > maxPayload || rest-frameHeader < int(n) {
			return out, int64(rest), nil
		}
		payload := data[off+frameHeader : off+frameHeader+int(n)]
		if crc32.ChecksumIEEE(payload) != crc {
			return out, int64(rest), nil
		}
		var r Record
		if json.Unmarshal(payload, &r) != nil || r.LSN >= maxLSN {
			return out, int64(rest), nil
		}
		out = append(out, r)
		off += frameHeader + int(n)
	}
}
