package wal

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"sync"
	"testing"
	"time"
)

// collect drains r until `want` records arrived or the deadline passes,
// asserting the stream is LSN-contiguous and never runs past the durable
// horizon.
func collect(t *testing.T, l *Log, r *Reader, want int, deadline time.Duration) []Record {
	t.Helper()
	var got []Record
	next := uint64(1)
	stop := time.Now().Add(deadline)
	for len(got) < want && time.Now().Before(stop) {
		recs, err := r.Next(16)
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		durable, _ := l.horizon()
		for _, rec := range recs {
			if rec.LSN != next {
				t.Fatalf("stream not contiguous: got LSN %d, want %d", rec.LSN, next)
			}
			// durable was sampled *after* Next returned and only ever
			// grows, so any record beyond it was served from an unsynced
			// suffix — the one thing a replication reader must never do.
			if rec.LSN > durable {
				t.Fatalf("reader served LSN %d beyond durable horizon %d", rec.LSN, durable)
			}
			next++
		}
		got = append(got, recs...)
		if len(recs) == 0 {
			time.Sleep(time.Millisecond)
		}
	}
	return got
}

// TestReaderTailsConcurrentGroupCommit pins the log-serving substrate of
// replication: while concurrent writers drive group-committed appends, a
// tailing reader must see every record exactly once, in LSN order, and
// never observe a torn frame group or an unsynced suffix.
func TestReaderTailsConcurrentGroupCommit(t *testing.T) {
	const writers, perWriter = 4, 50
	l, _ := mustOpen(t, t.TempDir(), Options{FsyncEvery: 8, FsyncMaxDelay: 5 * time.Millisecond})
	defer l.Close()

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				if _, err := l.Append(Record{Op: OpAdvance, Tenant: fmt.Sprintf("t%d", w), At: fmt.Sprint(i)}); err != nil {
					t.Errorf("Append: %v", err)
					return
				}
			}
		}(w)
	}

	r := l.NewReader(1)
	defer r.Close()
	got := collect(t, l, r, writers*perWriter, 10*time.Second)
	wg.Wait()
	if len(got) != writers*perWriter {
		t.Fatalf("reader delivered %d records, want %d", len(got), writers*perWriter)
	}
}

// TestReaderStopsAtDurableHorizon pins the cap deterministically: written
// but unsynced records are invisible, and become visible the instant
// their group commits.
func TestReaderStopsAtDurableHorizon(t *testing.T) {
	tf := &timerFactory{} // timers never fire: no idle flush
	l, _ := mustOpen(t, t.TempDir(), Options{FsyncEvery: 8, FsyncMaxDelay: 50 * time.Millisecond, AfterFunc: tf.afterFunc})
	defer l.Close()

	for i := 0; i < 3; i++ {
		if _, err := l.AppendAsync(Record{Op: OpAdvance, Tenant: "a", At: fmt.Sprint(i)}); err != nil {
			t.Fatalf("AppendAsync: %v", err)
		}
	}

	r := l.NewReader(1)
	defer r.Close()
	if recs, err := r.Next(16); err != nil || len(recs) != 0 {
		t.Fatalf("reader saw %d unsynced records (err %v), want 0", len(recs), err)
	}
	for _, ft := range tf.all() { // idle-flush fires: the partial group commits
		ft.fire()
	}
	recs, err := r.Next(16)
	if err != nil || len(recs) != 3 {
		t.Fatalf("reader saw %d records after commit (err %v), want 3", len(recs), err)
	}
}

// TestTermPersistsAcrossReopen pins term recovery: a promotion's term
// bump plus durable OpTerm marker must survive a restart, or a rebooted
// ex-follower could accept a deposed leader's appends.
func TestTermPersistsAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, Options{})
	appendN(t, l, 2)
	if err := l.SetTerm(3); err != nil {
		t.Fatalf("SetTerm: %v", err)
	}
	if err := l.SetTerm(2); err == nil {
		t.Fatal("SetTerm lowered the term")
	}
	if _, err := l.Append(Record{Op: OpTerm}); err != nil {
		t.Fatalf("Append(OpTerm): %v", err)
	}
	l.Close()

	l2, rec := mustOpen(t, dir, Options{})
	defer l2.Close()
	if l2.Term() != 3 || rec.Term != 3 {
		t.Fatalf("recovered term = %d (Recovery.Term %d), want 3", l2.Term(), rec.Term)
	}
}

// TestAppendReplicatedFencing pins the follower-side append contract:
// records must exactly continue the local log, stale-term records are
// fenced, and newer terms advance the local term.
func TestAppendReplicatedFencing(t *testing.T) {
	l, _ := mustOpen(t, t.TempDir(), Options{})
	defer l.Close()

	if _, err := l.AppendReplicated(Record{LSN: 1, Term: 1, Op: OpTenantCreate, Tenant: "a", M: 1}); err != nil {
		t.Fatalf("contiguous AppendReplicated: %v", err)
	}
	if l.Term() != 1 {
		t.Fatalf("term = %d after replicating term-1 record, want 1", l.Term())
	}
	if _, err := l.AppendReplicated(Record{LSN: 5, Term: 1, Op: OpAdvance, Tenant: "a"}); err == nil {
		t.Fatal("LSN gap accepted")
	}
	if err := l.SetTerm(4); err != nil {
		t.Fatalf("SetTerm: %v", err)
	}
	if _, err := l.AppendReplicated(Record{LSN: 2, Term: 1, Op: OpAdvance, Tenant: "a"}); !errors.Is(err, ErrStaleTerm) {
		t.Fatalf("stale-term append = %v, want ErrStaleTerm", err)
	}
	if _, err := l.AppendReplicated(Record{LSN: 2, Term: 7, Op: OpAdvance, Tenant: "a"}); err != nil {
		t.Fatalf("newer-term append: %v", err)
	}
	if l.Term() != 7 {
		t.Fatalf("term = %d after replicating term-7 record, want 7", l.Term())
	}
}

// TestNextRawMatchesNext pins the encode-once shipping contract: the raw
// frames NextRaw serves must be, byte for byte, the json.Marshal of the
// records Next decodes — same LSNs, and a CRC that is crc32(payload) —
// because the replication handler forwards them to followers without
// re-encoding and the follower re-verifies both.
func TestNextRawMatchesNext(t *testing.T) {
	l, _ := mustOpen(t, t.TempDir(), Options{FsyncEvery: 1})
	defer l.Close()
	appendN(t, l, 40)

	rd := l.NewReader(1)
	defer rd.Close()
	recs := collect(t, l, rd, 40, 2*time.Second)
	if len(recs) != 40 {
		t.Fatalf("Next served %d records, want 40", len(recs))
	}

	rr := l.NewReader(1)
	defer rr.Close()
	var raws []RawFrame
	stop := time.Now().Add(2 * time.Second)
	for len(raws) < 40 && time.Now().Before(stop) {
		fs, err := rr.NextRaw(16)
		if err != nil {
			t.Fatalf("NextRaw: %v", err)
		}
		raws = append(raws, fs...)
		if len(fs) == 0 {
			time.Sleep(time.Millisecond)
		}
	}
	if len(raws) != len(recs) {
		t.Fatalf("NextRaw served %d frames, Next served %d", len(raws), len(recs))
	}
	for i, rec := range recs {
		want, err := json.Marshal(rec)
		if err != nil {
			t.Fatal(err)
		}
		if raws[i].LSN != rec.LSN {
			t.Fatalf("frame %d: LSN %d, want %d", i, raws[i].LSN, rec.LSN)
		}
		if !bytes.Equal(raws[i].Payload, want) {
			t.Fatalf("frame %d payload:\n got %s\nwant %s", i, raws[i].Payload, want)
		}
		if got := crc32.ChecksumIEEE(raws[i].Payload); got != raws[i].CRC {
			t.Fatalf("frame %d: CRC %08x, want crc32(payload) %08x", i, raws[i].CRC, got)
		}
	}
}

// TestNextRawCompacted: a raw cursor below the snapshot horizon must fail
// with ErrCompacted exactly like the decoding reader, so the replication
// handler's 410 path is policy-independent of which reader it uses.
func TestNextRawCompacted(t *testing.T) {
	l, _ := mustOpen(t, t.TempDir(), Options{FsyncEvery: 1})
	defer l.Close()
	appendN(t, l, 10)
	if err := l.Compact([]byte(`{"snap":true}`)); err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 3)

	rd := l.NewReader(1)
	defer rd.Close()
	if _, err := rd.NextRaw(16); !errors.Is(err, ErrCompacted) {
		t.Fatalf("NextRaw below horizon: err %v, want ErrCompacted", err)
	}
	// From the horizon forward the raw stream resumes normally.
	rr := l.NewReader(l.SnapshotLSN() + 1)
	defer rr.Close()
	fs, err := rr.NextRaw(16)
	if err != nil {
		t.Fatalf("NextRaw at horizon: %v", err)
	}
	if len(fs) == 0 {
		t.Fatal("no frames past the snapshot horizon")
	}
}
