package obs

import (
	"encoding/json"
	"sync"
	"time"
)

// Lifecycle stages of one traced command. A mutating request emits
// StageSubmit when it reaches its tenant, StageWALAppend after its record
// is journaled (durable servers only), StageApply after the executive
// applied it, and one StageDispatch per scheduling decision the apply
// produced. The Cmd field ties the stages of one command together.
const (
	StageSubmit    = "submit"
	StageWALAppend = "wal-append"
	StageApply     = "apply"
	StageDispatch  = "dispatch"
)

// Event is one structured trace event, streamed as NDJSON by
// GET /v1/tenants/{id}/trace. Wall timestamps come from the injected
// Clock (exact under a Fake); virtual-time detail travels as exact
// rational strings like the rest of the wire protocol.
type Event struct {
	// Seq is the event's sequence number in its tenant's trace ring,
	// monotone from 0. A stream opened with ?from=N resumes at the oldest
	// retained event with Seq ≥ N.
	Seq int64 `json:"seq"`
	// T is the event time in nanoseconds since the Unix epoch.
	T int64 `json:"t"`
	// Tenant is the owning tenant id.
	Tenant string `json:"tenant,omitempty"`
	// Cmd correlates the stages of one command (per-tenant, monotone from
	// 1). Dispatch events carry the Cmd of the advance/drain/submit that
	// produced them.
	Cmd int64 `json:"cmd,omitempty"`
	// Op is the command op ("job-submit", "advance", ...), matching the
	// WAL record op names.
	Op string `json:"op,omitempty"`
	// Stage is one of the Stage* constants.
	Stage string `json:"stage"`
	// Task names the task involved, when there is one.
	Task string `json:"task,omitempty"`
	// At is the virtual time the command named (exact rat string).
	At string `json:"at,omitempty"`
	// DSeq is the dispatch decision's index in the tenant log
	// (StageDispatch only).
	DSeq int64 `json:"dseq,omitempty"`
	// Lag is the dispatch's tardiness in quanta, an exact rat string
	// (StageDispatch only).
	Lag string `json:"lag,omitempty"`
	// DurNs is the duration of the stage in nanoseconds, measured from
	// the command's StageSubmit instant by the injected clock.
	DurNs int64 `json:"durNs,omitempty"`
	// Err carries the failure message when the stage failed; the command
	// emits no further stages then.
	Err string `json:"err,omitempty"`
}

// Ring retains the most recent trace events in a fixed-capacity ring
// buffer and wakes followers when new events land. It is safe for
// concurrent use. Sequence numbers are assigned on Append and never
// reused; once the ring wraps, the oldest events are dropped and Since
// reports how many the caller missed.
type Ring struct {
	mu    sync.Mutex
	buf   []Event
	wire  [][]byte // memoized NDJSON wire bytes per slot; nil = not yet encoded
	start int      // index of the oldest retained event
	n     int      // retained count
	next  int64    // next sequence number to assign
	subs  map[chan struct{}]struct{}
}

// NewRing creates a ring retaining up to cap events (minimum 1).
func NewRing(capacity int) *Ring {
	if capacity < 1 {
		capacity = 1
	}
	return &Ring{buf: make([]Event, capacity), wire: make([][]byte, capacity), subs: map[chan struct{}]struct{}{}}
}

// Append assigns the event's sequence number, stores it (evicting the
// oldest if full), pokes followers, and returns the assigned Seq.
func (r *Ring) Append(ev Event) int64 {
	r.mu.Lock()
	ev.Seq = r.next
	r.next++
	if r.n == len(r.buf) {
		r.buf[r.start] = ev
		r.wire[r.start] = nil
		r.start = (r.start + 1) % len(r.buf)
	} else {
		i := (r.start + r.n) % len(r.buf)
		r.buf[i] = ev
		r.wire[i] = nil
		r.n++
	}
	for sub := range r.subs {
		select {
		case sub <- struct{}{}:
		default: // a wakeup is already queued; the follower will catch up
		}
	}
	r.mu.Unlock()
	return ev.Seq
}

// Since returns a copy of all retained events with Seq ≥ from, plus how
// many events with Seq ≥ from were already evicted (a follower that asked
// for history the ring no longer holds learns it skipped, rather than
// silently missing it).
func (r *Ring) Since(from int64) (events []Event, dropped int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if from < 0 {
		from = 0
	}
	oldest := r.next - int64(r.n)
	if from < oldest {
		dropped = oldest - from
		from = oldest
	}
	if from >= r.next {
		return nil, dropped
	}
	events = make([]Event, 0, r.next-from)
	for i := int(from - oldest); i < r.n; i++ {
		events = append(events, r.buf[(r.start+i)%len(r.buf)])
	}
	return events, dropped
}

// FramesSince is Since in wire form: it returns each retained event with
// Seq ≥ from as its NDJSON frame (json.Marshal + '\n', identical to what
// a json.Encoder would emit). Frames are encoded lazily on first request
// and memoized per slot, so a ring nobody follows never pays an encode
// while N followers share one encode per event. Returned slices are
// immutable — slot reuse replaces the pointer, never the bytes.
func (r *Ring) FramesSince(from int64) (frames [][]byte, dropped int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if from < 0 {
		from = 0
	}
	oldest := r.next - int64(r.n)
	if from < oldest {
		dropped = oldest - from
		from = oldest
	}
	if from >= r.next {
		return nil, dropped
	}
	frames = make([][]byte, 0, r.next-from)
	for i := int(from - oldest); i < r.n; i++ {
		slot := (r.start + i) % len(r.buf)
		if r.wire[slot] == nil {
			b, err := json.Marshal(r.buf[slot])
			if err != nil {
				// Event marshals from plain fields; this cannot happen.
				b = []byte("{}")
			}
			r.wire[slot] = append(b, '\n')
		}
		frames = append(frames, r.wire[slot])
	}
	return frames, dropped
}

// Next returns the sequence number the next appended event will get.
func (r *Ring) Next() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.next
}

// Subscribe registers a follower wakeup channel (capacity 1, coalescing).
// The follower re-reads Since after each wakeup.
func (r *Ring) Subscribe() chan struct{} {
	ch := make(chan struct{}, 1)
	r.mu.Lock()
	r.subs[ch] = struct{}{}
	r.mu.Unlock()
	return ch
}

// Unsubscribe removes a follower channel.
func (r *Ring) Unsubscribe(ch chan struct{}) {
	r.mu.Lock()
	delete(r.subs, ch)
	r.mu.Unlock()
}

// Tracer stamps lifecycle events for one tenant into its ring. The zero
// value (nil ring) is a no-op tracer, so untraced code paths cost one nil
// check. Cmd ids are assigned by Begin; callers hold their tenant lock
// while emitting, which orders events of one tenant totally.
type Tracer struct {
	ring  *Ring
	clock Clock

	mu      sync.Mutex
	nextCmd int64
}

// NewTracer creates a tracer writing to ring with timestamps from clock.
func NewTracer(ring *Ring, clock Clock) *Tracer {
	if clock == nil {
		clock = Real{}
	}
	return &Tracer{ring: ring, clock: clock}
}

// Begin opens a traced command: it assigns the next Cmd id, emits the
// StageSubmit event, and returns the id and the submit instant that later
// stages measure their DurNs from.
func (t *Tracer) Begin(tenant, op, task, at string) (cmd int64, start time.Time) {
	if t == nil || t.ring == nil {
		return 0, time.Time{}
	}
	start = t.clock.Now()
	t.mu.Lock()
	t.nextCmd++
	cmd = t.nextCmd
	t.mu.Unlock()
	t.ring.Append(Event{
		T: start.UnixNano(), Tenant: tenant, Cmd: cmd,
		Op: op, Stage: StageSubmit, Task: task, At: at,
	})
	return cmd, start
}

// Stage emits one lifecycle stage for the command opened by Begin, with
// DurNs measured from the submit instant.
func (t *Tracer) Stage(tenant string, cmd int64, start time.Time, op, stage, errMsg string) {
	if t == nil || t.ring == nil || cmd == 0 {
		return
	}
	now := t.clock.Now()
	t.ring.Append(Event{
		T: now.UnixNano(), Tenant: tenant, Cmd: cmd,
		Op: op, Stage: stage, DurNs: now.Sub(start).Nanoseconds(), Err: errMsg,
	})
}

// Dispatch emits a StageDispatch event for decision dseq of task at lag
// quanta, correlated to the command that produced it.
func (t *Tracer) Dispatch(tenant string, cmd int64, start time.Time, op, task string, dseq int64, lag string) {
	if t == nil || t.ring == nil {
		return
	}
	now := t.clock.Now()
	ev := Event{
		T: now.UnixNano(), Tenant: tenant, Cmd: cmd,
		Op: op, Stage: StageDispatch, Task: task, DSeq: dseq, Lag: lag,
	}
	if cmd != 0 {
		ev.DurNs = now.Sub(start).Nanoseconds()
	}
	t.ring.Append(ev)
}

// Ring returns the tracer's ring (nil for a no-op tracer).
func (t *Tracer) Ring() *Ring {
	if t == nil {
		return nil
	}
	return t.ring
}
