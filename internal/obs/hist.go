package obs

import (
	"fmt"
	"math"
	"sync"
)

// DefaultLatencyBuckets are the upper bounds (seconds) of request-latency
// histograms: powers of four from 16µs to ~67ms. The implicit +Inf bucket
// is always present and not listed.
var DefaultLatencyBuckets = []float64{
	16e-6, 64e-6, 256e-6, 1024e-6, 4096e-6, 16384e-6, 65536e-6,
}

// QuantaBuckets are the upper bounds for virtual-time lag histograms,
// measured in quanta. Theorem 3 bounds PD²-DVQ tardiness by one quantum,
// so the interesting resolution is below 1; anything above 1 landing
// outside the 1-bucket is a theorem violation made visible.
var QuantaBuckets = []float64{0, 0.25, 0.5, 0.75, 1}

// Histogram is a fixed-bucket histogram with cumulative bucket semantics
// matching the Prometheus text exposition: bucket i counts observations
// ≤ Bounds[i], and an implicit +Inf bucket counts everything. It is safe
// for concurrent use.
type Histogram struct {
	bounds []float64

	mu      sync.Mutex
	buckets []uint64 // cumulative: buckets[i] counts v ≤ bounds[i]
	count   uint64
	sum     float64
}

// NewHistogram creates a histogram over the given bucket upper bounds,
// which must be strictly increasing. The bounds slice is not copied; do
// not mutate it after the call.
func NewHistogram(bounds []float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram bounds not increasing at %d: %g ≤ %g", i, bounds[i], bounds[i-1]))
		}
	}
	return &Histogram{bounds: bounds, buckets: make([]uint64, len(bounds))}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	h.count++
	h.sum += v
	for i, ub := range h.bounds {
		if v <= ub {
			h.buckets[i]++
		}
	}
	h.mu.Unlock()
}

// Snapshot is a point-in-time copy of a histogram's state. Buckets are
// cumulative and parallel to Bounds; Count is the +Inf bucket.
type Snapshot struct {
	Bounds  []float64
	Buckets []uint64
	Count   uint64
	Sum     float64
}

// Snapshot returns a consistent copy of the histogram.
func (h *Histogram) Snapshot() Snapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	return Snapshot{
		Bounds:  h.bounds,
		Buckets: append([]uint64(nil), h.buckets...),
		Count:   h.count,
		Sum:     h.sum,
	}
}

// Quantile estimates the q-quantile (q in [0, 1]) from bucket counts by
// linear interpolation inside the bucket that contains the target rank,
// the same estimate Prometheus's histogram_quantile computes.
//
// Error bound: an observation is only known to lie within its bucket, so
// the estimate is off by at most the width of that bucket (for the first
// bucket, its upper bound; the lower edge is taken as 0 for non-negative
// data). If the rank lands in the +Inf bucket the estimate clamps to the
// last finite bound — quantiles beyond the instrumented range are
// reported as "at least the largest bound", never extrapolated. The
// histogram unit tests assert exactly these bounds.
func (s Snapshot) Quantile(q float64) float64 {
	if s.Count == 0 || math.IsNaN(q) {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	lower := 0.0 // lower edge of bucket i is Bounds[i-1] (0 for the first)
	prev := uint64(0)
	for i, ub := range s.Bounds {
		c := s.Buckets[i]
		if rank <= float64(c) && c > prev {
			// Interpolate within (lower, ub] by the rank's position among
			// this bucket's own observations.
			frac := (rank - float64(prev)) / float64(c-prev)
			if frac < 0 {
				frac = 0
			}
			return lower + (ub-lower)*frac
		}
		lower = ub
		prev = c
	}
	if len(s.Bounds) == 0 {
		return math.NaN()
	}
	return s.Bounds[len(s.Bounds)-1]
}
