package obs

import (
	"strings"
	"testing"
)

// TestWriteParseRoundTrip: what WriteHistogram/WriteSample emit, the
// scrape parser reads back verbatim — the two halves of the exposition
// contract agree with each other.
func TestWriteParseRoundTrip(t *testing.T) {
	h := NewHistogram([]float64{0.001, 0.01, 0.1})
	for _, v := range []float64{0.0005, 0.005, 0.05, 0.5} {
		h.Observe(v)
	}
	var b strings.Builder
	WriteHeader(&b, "x_seconds", "Test histogram.", "histogram")
	WriteHistogram(&b, "x_seconds", []Label{{"tenant", "a"}}, h.Snapshot())
	WriteHeader(&b, "x_total", "Test counter.", "counter")
	WriteSample(&b, "x_total", nil, "42")

	e, err := ParseExposition(b.String())
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Check(); err != nil {
		t.Fatal(err)
	}
	if got := e.FamilyNames(); len(got) != 2 || got[0] != "x_seconds" || got[1] != "x_total" {
		t.Fatalf("families: %v", got)
	}
	snap, err := e.Histogram("x_seconds", []Label{{"tenant", "a"}})
	if err != nil {
		t.Fatal(err)
	}
	if snap.Count != 4 || snap.Sum != 0.0005+0.005+0.05+0.5 {
		t.Errorf("round-tripped count=%d sum=%g", snap.Count, snap.Sum)
	}
	want := []uint64{1, 2, 3}
	for i, w := range want {
		if snap.Buckets[i] != w {
			t.Errorf("bucket %d: got %d, want %d", i, snap.Buckets[i], w)
		}
	}
	f := e.Family("x_total")
	if f == nil || len(f.Samples) != 1 || f.Samples[0].Value != 42 {
		t.Fatalf("counter family: %+v", f)
	}
}

func TestParseRejectsDuplicateFamily(t *testing.T) {
	const page = `# HELP a_total A.
# TYPE a_total counter
a_total 1
# HELP b_total B.
# TYPE b_total counter
b_total 1
# HELP a_total A again.
# TYPE a_total counter
a_total 2
`
	if _, err := ParseExposition(page); err == nil || !strings.Contains(err.Error(), "reopened") {
		t.Fatalf("want reopened-family error, got %v", err)
	}
}

func TestParseRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"sample before family": "a_total 1\n",
		"unterminated labels":  "# HELP a A.\n# TYPE a counter\na{x=\"y 1\n",
		"bad value":            "# HELP a A.\n# TYPE a counter\na one\n",
		"duplicate HELP":       "# HELP a A.\n# HELP a B.\n# TYPE a counter\na 1\n",
		"foreign sample":       "# HELP a A.\n# TYPE a counter\nb_total 1\n",
		"bad metric name":      "# HELP a A.\n# TYPE a counter\n1a 1\n",
	}
	for name, page := range cases {
		if _, err := ParseExposition(page); err == nil {
			t.Errorf("%s: parse accepted %q", name, page)
		}
	}
}

func TestCheckCatchesDuplicateSamples(t *testing.T) {
	const page = `# HELP a_total A.
# TYPE a_total counter
a_total{t="x"} 1
a_total{t="x"} 2
`
	e, err := ParseExposition(page)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Check(); err == nil || !strings.Contains(err.Error(), "duplicate sample") {
		t.Fatalf("want duplicate-sample error, got %v", err)
	}
}

func TestCheckCatchesInconsistentHistogram(t *testing.T) {
	const page = `# HELP h_seconds H.
# TYPE h_seconds histogram
h_seconds_bucket{le="1"} 5
h_seconds_bucket{le="2"} 3
h_seconds_bucket{le="+Inf"} 5
h_seconds_sum 1
h_seconds_count 5
`
	e, err := ParseExposition(page)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Check(); err == nil || !strings.Contains(err.Error(), "not cumulative") {
		t.Fatalf("want non-cumulative error, got %v", err)
	}
	const page2 = `# HELP h_seconds H.
# TYPE h_seconds histogram
h_seconds_bucket{le="1"} 3
h_seconds_bucket{le="+Inf"} 4
h_seconds_sum 1
h_seconds_count 5
`
	e2, err := ParseExposition(page2)
	if err != nil {
		t.Fatal(err)
	}
	if err := e2.Check(); err == nil || !strings.Contains(err.Error(), "+Inf bucket") {
		t.Fatalf("want +Inf mismatch error, got %v", err)
	}
}

func TestParseLabelEscapes(t *testing.T) {
	const page = "# HELP a A.\n# TYPE a gauge\na{msg=\"say \\\"hi\\\", ok\"} 1\n"
	e, err := ParseExposition(page)
	if err != nil {
		t.Fatal(err)
	}
	got := e.Family("a").Samples[0].Label("msg")
	if got != `say "hi", ok` {
		t.Fatalf("escaped label: %q", got)
	}
}

func TestParseInfValues(t *testing.T) {
	const page = "# HELP a A.\n# TYPE a gauge\na +Inf\n"
	e, err := ParseExposition(page)
	if err != nil {
		t.Fatal(err)
	}
	v := e.Family("a").Samples[0].Value
	if !(v > 0 && v*2 == v) { // +Inf
		t.Fatalf("value: %g", v)
	}
}
