package obs

import (
	"sync"
	"testing"
	"time"
)

func TestRingAppendSince(t *testing.T) {
	r := NewRing(4)
	for i := 0; i < 3; i++ {
		seq := r.Append(Event{Stage: StageSubmit})
		if seq != int64(i) {
			t.Fatalf("append %d: got seq %d", i, seq)
		}
	}
	evs, dropped := r.Since(0)
	if dropped != 0 || len(evs) != 3 {
		t.Fatalf("Since(0): got %d events, %d dropped", len(evs), dropped)
	}
	for i, ev := range evs {
		if ev.Seq != int64(i) {
			t.Errorf("event %d has seq %d", i, ev.Seq)
		}
	}
	evs, _ = r.Since(2)
	if len(evs) != 1 || evs[0].Seq != 2 {
		t.Fatalf("Since(2): got %+v", evs)
	}
	if evs, _ := r.Since(99); evs != nil {
		t.Fatalf("Since past end should be empty, got %+v", evs)
	}
}

// TestRingWrapDrops: once the ring wraps, Since reports exactly how many
// requested events were evicted and returns the retained suffix in order.
func TestRingWrapDrops(t *testing.T) {
	r := NewRing(3)
	for i := 0; i < 10; i++ {
		r.Append(Event{Cmd: int64(i)})
	}
	evs, dropped := r.Since(0)
	if dropped != 7 {
		t.Errorf("dropped: got %d, want 7", dropped)
	}
	if len(evs) != 3 {
		t.Fatalf("retained: got %d, want 3", len(evs))
	}
	for i, ev := range evs {
		if want := int64(7 + i); ev.Seq != want || ev.Cmd != want {
			t.Errorf("event %d: seq %d cmd %d, want %d", i, ev.Seq, ev.Cmd, want)
		}
	}
	// Asking from inside the retained window drops nothing.
	if _, dropped := r.Since(8); dropped != 0 {
		t.Errorf("Since(8) dropped %d, want 0", dropped)
	}
}

func TestRingSubscribeCoalesces(t *testing.T) {
	r := NewRing(8)
	ch := r.Subscribe()
	defer r.Unsubscribe(ch)
	for i := 0; i < 5; i++ {
		r.Append(Event{})
	}
	select {
	case <-ch:
	default:
		t.Fatal("no wakeup after appends")
	}
	select {
	case <-ch:
		t.Fatal("wakeups should coalesce to one")
	default:
	}
}

// TestTracerLifecycle drives a full traced command with a stepping fake
// clock and asserts every timestamp and duration exactly.
func TestTracerLifecycle(t *testing.T) {
	start := time.Unix(1700000000, 0)
	clock := NewFake(start, time.Millisecond)
	ring := NewRing(16)
	tr := NewTracer(ring, clock)

	cmd, t0 := tr.Begin("acme", "job-submit", "web", "3")
	if cmd != 1 {
		t.Fatalf("first cmd id: got %d", cmd)
	}
	tr.Stage("acme", cmd, t0, "job-submit", StageWALAppend, "")
	tr.Stage("acme", cmd, t0, "job-submit", StageApply, "")
	tr.Dispatch("acme", cmd, t0, "job-submit", "web", 0, "0")

	evs, _ := ring.Since(0)
	if len(evs) != 4 {
		t.Fatalf("got %d events, want 4", len(evs))
	}
	wantStages := []string{StageSubmit, StageWALAppend, StageApply, StageDispatch}
	for i, ev := range evs {
		if ev.Stage != wantStages[i] {
			t.Errorf("event %d stage %q, want %q", i, ev.Stage, wantStages[i])
		}
		if ev.Cmd != 1 || ev.Tenant != "acme" || ev.Op != "job-submit" {
			t.Errorf("event %d: %+v", i, ev)
		}
		// The clock steps 1ms per read; event i was stamped at read i.
		if want := start.Add(time.Duration(i) * time.Millisecond).UnixNano(); ev.T != want {
			t.Errorf("event %d timestamp %d, want %d", i, ev.T, want)
		}
		if i > 0 {
			if want := (time.Duration(i) * time.Millisecond).Nanoseconds(); ev.DurNs != want {
				t.Errorf("event %d durNs %d, want %d", i, ev.DurNs, want)
			}
		}
	}
	if evs[0].Task != "web" || evs[0].At != "3" {
		t.Errorf("submit event detail: %+v", evs[0])
	}
	if evs[3].Lag != "0" || evs[3].DSeq != 0 || evs[3].Task != "web" {
		t.Errorf("dispatch event detail: %+v", evs[3])
	}
}

// TestTracerNoop: a nil tracer and a tracer without a ring are free to
// call — the untraced path must not need guards at every call site.
func TestTracerNoop(t *testing.T) {
	var tr *Tracer
	cmd, t0 := tr.Begin("x", "advance", "", "")
	tr.Stage("x", cmd, t0, "advance", StageApply, "")
	tr.Dispatch("x", cmd, t0, "advance", "", 0, "0")
	if tr.Ring() != nil {
		t.Error("nil tracer should have nil ring")
	}
}

func TestRingConcurrent(t *testing.T) {
	r := NewRing(64)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				r.Append(Event{Stage: StageDispatch})
				r.Since(0)
			}
		}()
	}
	wg.Wait()
	if r.Next() != 800 {
		t.Errorf("next seq: got %d, want 800", r.Next())
	}
}
