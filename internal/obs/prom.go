package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// This file holds both halves of the text-exposition contract: the writer
// the server renders /metrics with, and the scrape parser that tests,
// pfairload and the golden-file harness read it back with. Keeping them
// in one package means a malformed exposition is caught by our own tests
// before any real Prometheus sees it.

// Label is one metric label pair.
type Label struct {
	Name, Value string
}

// appendLabels renders a label set as {a="x",b="y"} into b (nothing when
// empty). Extra is appended last (used for the le label of bucket lines).
// Byte-for-byte what renderLabels via fmt produced: %q of a string is
// strconv.Quote.
func appendLabels(b []byte, labels []Label, extra ...Label) []byte {
	if len(labels)+len(extra) == 0 {
		return b
	}
	b = append(b, '{')
	n := 0
	for _, set := range [2][]Label{labels, extra} {
		for _, l := range set {
			if n > 0 {
				b = append(b, ',')
			}
			n++
			b = append(b, l.Name...)
			b = append(b, '=')
			b = strconv.AppendQuote(b, l.Value)
		}
	}
	return append(b, '}')
}

// AppendHeader appends a family's HELP and TYPE lines to b. The Append*
// family is the allocation-free exposition writer: the server renders
// /metrics into one pooled buffer with these, with no fmt machinery per
// sample; the io.Writer Write* wrappers below remain for callers that
// render once per run.
func AppendHeader(b []byte, name, help, typ string) []byte {
	b = append(b, "# HELP "...)
	b = append(b, name...)
	b = append(b, ' ')
	b = append(b, help...)
	b = append(b, "\n# TYPE "...)
	b = append(b, name...)
	b = append(b, ' ')
	b = append(b, typ...)
	return append(b, '\n')
}

// AppendSample appends one sample line to b.
func AppendSample(b []byte, name string, labels []Label, value string) []byte {
	b = append(b, name...)
	b = appendLabels(b, labels)
	b = append(b, ' ')
	b = append(b, value...)
	return append(b, '\n')
}

// AppendHistogram appends the _bucket/_sum/_count series of one histogram
// snapshot under the given base labels. The caller appends the family
// header once and may then emit several label sets (e.g. one per tenant).
func AppendHistogram(b []byte, name string, labels []Label, s Snapshot) []byte {
	for i, ub := range s.Bounds {
		b = append(b, name...)
		b = append(b, "_bucket"...)
		b = appendLabels(b, labels, Label{"le", formatBound(ub)})
		b = append(b, ' ')
		b = strconv.AppendUint(b, s.Buckets[i], 10)
		b = append(b, '\n')
	}
	b = append(b, name...)
	b = append(b, "_bucket"...)
	b = appendLabels(b, labels, Label{"le", "+Inf"})
	b = append(b, ' ')
	b = strconv.AppendUint(b, s.Count, 10)
	b = append(b, '\n')
	b = append(b, name...)
	b = append(b, "_sum"...)
	b = appendLabels(b, labels)
	b = append(b, ' ')
	// %g with default precision is the shortest-unique 'g' form.
	b = strconv.AppendFloat(b, s.Sum, 'g', -1, 64)
	b = append(b, '\n')
	b = append(b, name...)
	b = append(b, "_count"...)
	b = appendLabels(b, labels)
	b = append(b, ' ')
	b = strconv.AppendUint(b, s.Count, 10)
	return append(b, '\n')
}

// WriteHeader writes a family's HELP and TYPE lines.
func WriteHeader(w io.Writer, name, help, typ string) {
	w.Write(AppendHeader(nil, name, help, typ))
}

// WriteSample writes one sample line.
func WriteSample(w io.Writer, name string, labels []Label, value string) {
	w.Write(AppendSample(nil, name, labels, value))
}

// WriteHistogram writes the _bucket/_sum/_count series of one histogram
// snapshot under the given base labels.
func WriteHistogram(w io.Writer, name string, labels []Label, s Snapshot) {
	w.Write(AppendHistogram(nil, name, labels, s))
}

func formatBound(ub float64) string { return strconv.FormatFloat(ub, 'g', -1, 64) }

// --- scrape parser ---

// Sample is one parsed sample line.
type Sample struct {
	Name   string
	Labels map[string]string
	Value  float64
	Line   int // 1-based line number in the exposition
}

// Label returns a label value ("" when absent).
func (s Sample) Label(name string) string { return s.Labels[name] }

// Family is one metric family: its metadata plus every sample that
// belongs to it (for histograms, the _bucket/_sum/_count series).
type Family struct {
	Name    string
	Help    string
	Type    string
	Samples []Sample
}

// Exposition is a parsed /metrics page with families in emission order.
type Exposition struct {
	Families []Family
	byName   map[string]*Family
}

// Family looks a family up by name (nil when absent).
func (e *Exposition) Family(name string) *Family {
	return e.byName[name]
}

// FamilyNames returns the family names in emission order.
func (e *Exposition) FamilyNames() []string {
	out := make([]string, len(e.Families))
	for i, f := range e.Families {
		out[i] = f.Name
	}
	return out
}

// Histogram reassembles the histogram family under `name` with exactly
// the given base labels into a Snapshot (inverse of WriteHistogram).
func (e *Exposition) Histogram(name string, labels []Label) (Snapshot, error) {
	f := e.Family(name)
	if f == nil {
		return Snapshot{}, fmt.Errorf("obs: no family %q", name)
	}
	if f.Type != "histogram" {
		return Snapshot{}, fmt.Errorf("obs: family %q has type %q, not histogram", name, f.Type)
	}
	want := map[string]string{}
	for _, l := range labels {
		want[l.Name] = l.Value
	}
	match := func(s Sample, withLe bool) bool {
		extra := 0
		if withLe {
			extra = 1
		}
		if len(s.Labels) != len(want)+extra {
			return false
		}
		for k, v := range want {
			if s.Labels[k] != v {
				return false
			}
		}
		return true
	}
	var snap Snapshot
	seen := false
	for _, s := range f.Samples {
		switch s.Name {
		case name + "_bucket":
			if !match(s, true) {
				continue
			}
			seen = true
			if s.Labels["le"] == "+Inf" {
				continue // redundant with _count; verified by Check
			}
			ub, err := strconv.ParseFloat(s.Labels["le"], 64)
			if err != nil {
				return Snapshot{}, fmt.Errorf("obs: line %d: bad le %q", s.Line, s.Labels["le"])
			}
			snap.Bounds = append(snap.Bounds, ub)
			snap.Buckets = append(snap.Buckets, uint64(s.Value))
		case name + "_sum":
			if match(s, false) {
				seen = true
				snap.Sum = s.Value
			}
		case name + "_count":
			if match(s, false) {
				seen = true
				snap.Count = uint64(s.Value)
			}
		}
	}
	if !seen {
		return Snapshot{}, fmt.Errorf("obs: family %q has no series with labels %v", name, want)
	}
	return snap, nil
}

// ParseExposition parses a Prometheus text-format page into families,
// enforcing the structure the server promises: HELP and TYPE exactly once
// per family and before its samples, no family split or repeated after
// another family started, every sample attributable to the current
// family, and parseable values. It is the in-test scrape parser the
// golden-file harness and pfairload build on.
func ParseExposition(text string) (*Exposition, error) {
	e := &Exposition{byName: map[string]*Family{}}
	var order []*Family
	var cur *Family
	for i, line := range strings.Split(text, "\n") {
		ln := i + 1
		line = strings.TrimRight(line, "\r")
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			kind, name, rest, err := parseComment(line)
			if err != nil {
				return nil, fmt.Errorf("obs: line %d: %v", ln, err)
			}
			if kind == "" {
				continue // free-form comment
			}
			if cur == nil || cur.Name != name {
				if e.byName[name] != nil {
					return nil, fmt.Errorf("obs: line %d: family %q reopened (duplicate or split family)", ln, name)
				}
				cur = &Family{Name: name}
				order = append(order, cur)
				e.byName[name] = cur
			}
			if len(cur.Samples) > 0 {
				return nil, fmt.Errorf("obs: line %d: %s for %q after its samples", ln, kind, name)
			}
			switch kind {
			case "HELP":
				if cur.Help != "" {
					return nil, fmt.Errorf("obs: line %d: duplicate HELP for %q", ln, name)
				}
				cur.Help = rest
			case "TYPE":
				if cur.Type != "" {
					return nil, fmt.Errorf("obs: line %d: duplicate TYPE for %q", ln, name)
				}
				cur.Type = rest
			}
			continue
		}
		s, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("obs: line %d: %v", ln, err)
		}
		s.Line = ln
		if cur == nil {
			return nil, fmt.Errorf("obs: line %d: sample %q before any family header", ln, s.Name)
		}
		base := s.Name
		if cur.Type == "histogram" {
			for _, suf := range []string{"_bucket", "_sum", "_count"} {
				if strings.HasSuffix(s.Name, suf) {
					base = strings.TrimSuffix(s.Name, suf)
					break
				}
			}
		}
		if base != cur.Name {
			return nil, fmt.Errorf("obs: line %d: sample %q does not belong to family %q", ln, s.Name, cur.Name)
		}
		cur.Samples = append(cur.Samples, s)
	}
	e.Families = make([]Family, len(order))
	for i, f := range order {
		e.Families[i] = *f
		e.byName[f.Name] = &e.Families[i]
	}
	return e, nil
}

func parseComment(line string) (kind, name, rest string, err error) {
	fields := strings.SplitN(line, " ", 4)
	if len(fields) < 2 {
		return "", "", "", nil
	}
	switch fields[1] {
	case "HELP":
		if len(fields) < 4 {
			return "", "", "", fmt.Errorf("malformed HELP line %q", line)
		}
		return "HELP", fields[2], fields[3], nil
	case "TYPE":
		if len(fields) < 4 {
			return "", "", "", fmt.Errorf("malformed TYPE line %q", line)
		}
		return "TYPE", fields[2], fields[3], nil
	}
	return "", "", "", nil
}

func parseSample(line string) (Sample, error) {
	s := Sample{Labels: map[string]string{}}
	rest := line
	if i := strings.IndexByte(rest, '{'); i >= 0 {
		s.Name = rest[:i]
		end := strings.LastIndexByte(rest, '}')
		if end < i {
			return s, fmt.Errorf("unterminated label set in %q", line)
		}
		if err := parseLabels(rest[i+1:end], s.Labels); err != nil {
			return s, err
		}
		rest = strings.TrimSpace(rest[end+1:])
	} else {
		j := strings.IndexByte(rest, ' ')
		if j < 0 {
			return s, fmt.Errorf("sample without value in %q", line)
		}
		s.Name = rest[:j]
		rest = strings.TrimSpace(rest[j+1:])
	}
	if s.Name == "" || !validMetricName(s.Name) {
		return s, fmt.Errorf("bad metric name in %q", line)
	}
	v, err := parseValue(rest)
	if err != nil {
		return s, fmt.Errorf("bad value %q: %v", rest, err)
	}
	s.Value = v
	return s, nil
}

func parseValue(v string) (float64, error) {
	switch v {
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	}
	return strconv.ParseFloat(v, 64)
}

func parseLabels(s string, into map[string]string) error {
	for len(s) > 0 {
		eq := strings.IndexByte(s, '=')
		if eq <= 0 {
			return fmt.Errorf("malformed labels %q", s)
		}
		name := strings.TrimSpace(s[:eq])
		s = s[eq+1:]
		if len(s) == 0 || s[0] != '"' {
			return fmt.Errorf("unquoted label value for %q", name)
		}
		// Find the closing quote, honouring backslash escapes.
		end := -1
		for i := 1; i < len(s); i++ {
			if s[i] == '\\' {
				i++
				continue
			}
			if s[i] == '"' {
				end = i
				break
			}
		}
		if end < 0 {
			return fmt.Errorf("unterminated label value for %q", name)
		}
		val, err := strconv.Unquote(s[:end+1])
		if err != nil {
			return fmt.Errorf("label %q value: %v", name, err)
		}
		if _, dup := into[name]; dup {
			return fmt.Errorf("duplicate label %q", name)
		}
		into[name] = val
		s = s[end+1:]
		if len(s) > 0 {
			if s[0] != ',' {
				return fmt.Errorf("malformed label separator in %q", s)
			}
			s = s[1:]
		}
	}
	return nil
}

func validMetricName(name string) bool {
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// Check validates exposition-wide invariants beyond per-line syntax:
// every family has HELP and TYPE, no two samples in a family repeat the
// same name+label set, and histogram families are internally consistent
// (buckets cumulative and non-decreasing, +Inf bucket equal to _count).
// The golden-file test runs it on every scrape.
func (e *Exposition) Check() error {
	for _, f := range e.Families {
		if f.Help == "" {
			return fmt.Errorf("obs: family %q has no HELP", f.Name)
		}
		if f.Type == "" {
			return fmt.Errorf("obs: family %q has no TYPE", f.Name)
		}
		seen := map[string]bool{}
		for _, s := range f.Samples {
			key := s.Name + renderLabelsSorted(s.Labels)
			if seen[key] {
				return fmt.Errorf("obs: line %d: duplicate sample %s", s.Line, key)
			}
			seen[key] = true
		}
		if f.Type == "histogram" {
			if err := checkHistogramFamily(f); err != nil {
				return err
			}
		}
	}
	return nil
}

func renderLabelsSorted(labels map[string]string) string {
	names := make([]string, 0, len(labels))
	for n := range labels {
		names = append(names, n)
	}
	sort.Strings(names)
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteByte('=')
		b.WriteString(strconv.Quote(labels[n]))
	}
	b.WriteByte('}')
	return b.String()
}

// checkHistogramFamily groups the family's samples by their non-le label
// set and verifies each series' bucket/count/sum consistency.
func checkHistogramFamily(f Family) error {
	type series struct {
		bounds  []float64
		buckets []uint64
		inf     float64
		hasInf  bool
		count   float64
		hasCnt  bool
		line    int
	}
	groups := map[string]*series{}
	group := func(s Sample) *series {
		labels := map[string]string{}
		for k, v := range s.Labels {
			if k != "le" {
				labels[k] = v
			}
		}
		key := renderLabelsSorted(labels)
		g := groups[key]
		if g == nil {
			g = &series{line: s.Line}
			groups[key] = g
		}
		return g
	}
	for _, s := range f.Samples {
		switch s.Name {
		case f.Name + "_bucket":
			g := group(s)
			if s.Labels["le"] == "+Inf" {
				g.inf, g.hasInf = s.Value, true
				continue
			}
			ub, err := strconv.ParseFloat(s.Labels["le"], 64)
			if err != nil {
				return fmt.Errorf("obs: line %d: bad le %q", s.Line, s.Labels["le"])
			}
			g.bounds = append(g.bounds, ub)
			g.buckets = append(g.buckets, uint64(s.Value))
		case f.Name + "_sum":
			// nothing to cross-check beyond parseability
		case f.Name + "_count":
			g := group(s)
			g.count, g.hasCnt = s.Value, true
		}
	}
	for key, g := range groups {
		for i := 1; i < len(g.bounds); i++ {
			if g.bounds[i] <= g.bounds[i-1] {
				return fmt.Errorf("obs: histogram %s%s: le bounds not increasing", f.Name, key)
			}
			if g.buckets[i] < g.buckets[i-1] {
				return fmt.Errorf("obs: histogram %s%s: bucket counts not cumulative", f.Name, key)
			}
		}
		if !g.hasInf || !g.hasCnt {
			return fmt.Errorf("obs: histogram %s%s: missing +Inf bucket or _count", f.Name, key)
		}
		if g.inf != g.count {
			return fmt.Errorf("obs: histogram %s%s: +Inf bucket %g != count %g", f.Name, key, g.inf, g.count)
		}
		if len(g.buckets) > 0 && float64(g.buckets[len(g.buckets)-1]) > g.count {
			return fmt.Errorf("obs: histogram %s%s: last bucket exceeds count", f.Name, key)
		}
	}
	return nil
}
