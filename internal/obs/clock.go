// Package obs is pfaird's observability layer: fixed-bucket latency
// histograms, a ring buffer of structured trace events for the command
// lifecycle, Prometheus text-exposition helpers (writer *and* parser, so
// tests and tools consume exactly what the server emits), and build-info
// discovery. Everything that measures time does so through an injectable
// Clock, which is the package's core contract: with a Fake clock every
// histogram bucket count, every quantile, and every trace timestamp is an
// exact, deterministic function of the workload — the test harness
// asserts equality, not tolerances. The package depends only on the
// stdlib and sits below internal/server and internal/wal, which thread a
// single Clock through every measured path.
package obs

import (
	"sync"
	"time"
)

// Clock supplies the current wall time. The production implementation is
// Real; tests inject a Fake so measured durations are exact.
type Clock interface {
	Now() time.Time
}

// Real is the system clock.
type Real struct{}

// Now returns time.Now().
func (Real) Now() time.Time { return time.Now() }

// Fake is a deterministic test clock. Each Now call returns the current
// instant and then advances it by Step (0 freezes time); Advance moves it
// explicitly. The auto-step makes "how long did this take" observations
// exact: a code path that reads the clock twice measures exactly Step,
// however fast the machine is.
//
// Fake is safe for concurrent use, but concurrent readers see
// interleaving-dependent instants — deterministic tests drive it from one
// goroutine.
type Fake struct {
	mu   sync.Mutex
	now  time.Time
	step time.Duration
}

// NewFake starts a fake clock at `at`, auto-advancing by step per Now call.
func NewFake(at time.Time, step time.Duration) *Fake {
	return &Fake{now: at, step: step}
}

// Now returns the current fake instant and advances it by the step.
func (f *Fake) Now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	t := f.now
	f.now = f.now.Add(f.step)
	return t
}

// Advance moves the fake clock forward by d without consuming a step.
func (f *Fake) Advance(d time.Duration) {
	f.mu.Lock()
	f.now = f.now.Add(d)
	f.mu.Unlock()
}

// SetStep changes the per-Now auto-advance.
func (f *Fake) SetStep(step time.Duration) {
	f.mu.Lock()
	f.step = step
	f.mu.Unlock()
}
