package obs

import (
	"runtime"
	"runtime/debug"
)

// BuildInfo identifies the running binary for the pfaird_build_info
// metric: the standard "info metric" pattern where the interesting data
// rides in labels and the value is constantly 1.
type BuildInfo struct {
	// Version is the main module version ("(devel)" for a source build).
	Version string
	// Revision is the VCS revision baked in by the Go toolchain, if any.
	Revision string
	// GoVersion is the toolchain that built the binary.
	GoVersion string
}

// ReadBuildInfo discovers the binary's build identity from the runtime.
// Tests override the result wholesale (Server.SetBuildInfo) so golden
// expositions do not depend on the toolchain that ran them.
func ReadBuildInfo() BuildInfo {
	bi := BuildInfo{Version: "unknown", GoVersion: runtime.Version()}
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return bi
	}
	if info.Main.Version != "" {
		bi.Version = info.Main.Version
	}
	for _, s := range info.Settings {
		if s.Key == "vcs.revision" {
			bi.Revision = s.Value
		}
	}
	return bi
}
