package obs

import (
	"math"
	"testing"
	"time"
)

// TestHistogramExactBuckets feeds a fully known distribution and asserts
// the exact cumulative count of every bucket — no tolerances. The values
// are chosen to hit bucket edges (an observation equal to a bound belongs
// to that bound's bucket) and the +Inf overflow.
func TestHistogramExactBuckets(t *testing.T) {
	h := NewHistogram([]float64{1, 10, 100})
	// 3 values ≤ 1 (incl. the exact edge), 2 in (1,10], 1 in (10,100],
	// 2 beyond every bound.
	for _, v := range []float64{0, 0.5, 1, 1.0001, 10, 99, 101, 1e9} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if got, want := s.Buckets[0], uint64(3); got != want {
		t.Errorf("bucket le=1: got %d, want %d", got, want)
	}
	if got, want := s.Buckets[1], uint64(5); got != want {
		t.Errorf("bucket le=10: got %d, want %d", got, want)
	}
	if got, want := s.Buckets[2], uint64(6); got != want {
		t.Errorf("bucket le=100: got %d, want %d", got, want)
	}
	if s.Count != 8 {
		t.Errorf("count: got %d, want 8", s.Count)
	}
	wantSum := 0.0 + 0.5 + 1 + 1.0001 + 10 + 99 + 101 + 1e9
	if s.Sum != wantSum {
		t.Errorf("sum: got %g, want %g", s.Sum, wantSum)
	}
}

// TestHistogramFakeClockDurations pins the deterministic-measurement
// contract: a fake clock stepping 1ms per read makes a "start/stop"
// observation land in an exactly predictable bucket, every time.
func TestHistogramFakeClockDurations(t *testing.T) {
	clock := NewFake(time.Unix(1000, 0), time.Millisecond)
	h := NewHistogram(DefaultLatencyBuckets)
	for i := 0; i < 10; i++ {
		start := clock.Now()
		// Simulate work: the handler reads the clock once more.
		d := clock.Now().Sub(start)
		h.Observe(d.Seconds())
	}
	s := h.Snapshot()
	// 1ms lands in the 1024µs bucket (index 3) exactly: ≤ 256µs buckets
	// stay 0, everything from 1024µs up holds all 10.
	for i, want := range []uint64{0, 0, 0, 10, 10, 10, 10} {
		if s.Buckets[i] != want {
			t.Errorf("bucket le=%g: got %d, want %d", s.Bounds[i], s.Buckets[i], want)
		}
	}
	// The sum accumulates in observation order; reproduce the identical
	// float arithmetic rather than comparing against 10×0.001.
	wantSum := 0.0
	for i := 0; i < 10; i++ {
		wantSum += 0.001
	}
	if s.Sum != wantSum {
		t.Errorf("sum: got %g, want %g", s.Sum, wantSum)
	}
}

// TestQuantileKnownDistribution checks the interpolation estimate against
// a uniform distribution where the true quantiles are known, asserting
// the documented error bound: the estimate is off by at most the width of
// the bucket holding the target rank.
func TestQuantileKnownDistribution(t *testing.T) {
	bounds := []float64{10, 20, 30, 40, 50, 60, 70, 80, 90, 100}
	h := NewHistogram(bounds)
	// Uniform 1..100: true q-quantile of the empirical distribution ≈ 100q.
	for v := 1; v <= 100; v++ {
		h.Observe(float64(v))
	}
	s := h.Snapshot()
	for _, q := range []float64{0.1, 0.25, 0.5, 0.75, 0.9, 0.99} {
		got := s.Quantile(q)
		truth := 100 * q
		const bucketWidth = 10.0
		if math.Abs(got-truth) > bucketWidth {
			t.Errorf("q=%g: estimate %g vs truth %g exceeds bucket-width bound %g",
				q, got, truth, bucketWidth)
		}
	}
	// With uniform data and aligned buckets the interpolation is exact.
	if got := s.Quantile(0.5); got != 50 {
		t.Errorf("median of uniform 1..100: got %g, want exactly 50", got)
	}
	if got := s.Quantile(1); got != 100 {
		t.Errorf("q=1: got %g, want 100", got)
	}
}

// TestQuantileEdgeCases covers empty histograms, single buckets, and
// ranks landing in the +Inf bucket (clamped, never extrapolated).
func TestQuantileEdgeCases(t *testing.T) {
	h := NewHistogram([]float64{1, 2})
	if !math.IsNaN(h.Snapshot().Quantile(0.5)) {
		t.Error("empty histogram should estimate NaN")
	}
	h.Observe(5) // beyond every bound
	if got := h.Snapshot().Quantile(0.5); got != 2 {
		t.Errorf("rank in +Inf bucket should clamp to last bound 2, got %g", got)
	}
	h2 := NewHistogram([]float64{1, 2})
	h2.Observe(0.5)
	h2.Observe(1.5)
	// q=0 clamps to the lower edge of the first populated bucket.
	if got := h2.Snapshot().Quantile(0); got != 0 {
		t.Errorf("q=0: got %g, want 0", got)
	}
	if got := h2.Snapshot().Quantile(1); got != 2 {
		t.Errorf("q=1: got %g, want 2", got)
	}
}

// TestQuantaBucketsZeroBound: the 0 bound makes "dispatched with zero
// lag" an exact bucket, so the common case is distinguishable from
// "small but nonzero tardiness".
func TestQuantaBucketsZeroBound(t *testing.T) {
	h := NewHistogram(QuantaBuckets)
	h.Observe(0)
	h.Observe(0)
	h.Observe(0.5)
	h.Observe(1)
	s := h.Snapshot()
	if s.Buckets[0] != 2 {
		t.Errorf("le=0 bucket: got %d, want 2", s.Buckets[0])
	}
	if s.Buckets[2] != 3 { // le=0.5
		t.Errorf("le=0.5 bucket: got %d, want 3", s.Buckets[2])
	}
	if s.Buckets[4] != 4 { // le=1: Theorem 3 says everything lands here
		t.Errorf("le=1 bucket: got %d, want 4", s.Buckets[4])
	}
}

func TestNewHistogramRejectsBadBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("non-increasing bounds should panic")
		}
	}()
	NewHistogram([]float64{1, 1})
}
