// Package quantize maps real task parameters onto the Pfair quantum model.
//
// Pfair scheduling requires each task's execution cost and period to be
// expressed as integral multiples of the quantum size (Sec. 2 of the
// paper; relaxing the execution-cost half of this is the paper's stated
// future work). A real workload — execution times and periods in, say,
// microseconds — must therefore be quantized: for quantum size Q,
//
//	e(Q) = ⌈C/Q⌉   (costs round up: capacity must cover the work)
//	p(Q) = ⌊T/Q⌋   (periods round down: deadlines must not move later)
//
// Both roundings inflate utilization, and the inflation grows with Q; per-
// quantum scheduling overhead shrinks with Q. This package computes the
// inflated weights, the utilization curve over candidate quantum sizes,
// and the feasible/optimal choice of Q — the system-configuration decision
// every Pfair deployment (e.g. the LITMUS^RT implementations this line of
// work fed into) has to make.
package quantize

import (
	"fmt"

	"desyncpfair/internal/model"
	"desyncpfair/internal/rat"
)

// RealTask is a task with parameters in arbitrary but common time units
// (e.g. microseconds): worst-case execution time C per job and period T.
type RealTask struct {
	Name string
	C, T int64
}

// Validate checks 0 < C ≤ T.
func (rt RealTask) Validate() error {
	if rt.C <= 0 || rt.T <= 0 {
		return fmt.Errorf("quantize: %s has non-positive parameters", rt.Name)
	}
	if rt.C > rt.T {
		return fmt.Errorf("quantize: %s has C = %d > T = %d", rt.Name, rt.C, rt.T)
	}
	return nil
}

// Weight quantizes one task for quantum size q (same unit as C and T),
// optionally inflating the cost with a per-quantum overhead (also in time
// units — context-switch plus scheduling cost charged to every quantum).
func Weight(rt RealTask, q, overhead int64) (model.Weight, error) {
	if err := rt.Validate(); err != nil {
		return model.Weight{}, err
	}
	if q <= 0 {
		return model.Weight{}, fmt.Errorf("quantize: quantum %d", q)
	}
	if overhead < 0 || overhead >= q {
		return model.Weight{}, fmt.Errorf("quantize: overhead %d outside [0, q)", overhead)
	}
	// Overhead shrinks the useful part of each quantum to q − overhead.
	e := rat.CeilDiv(rt.C, q-overhead)
	p := rat.FloorDiv(rt.T, q)
	if p < 1 {
		return model.Weight{}, fmt.Errorf("quantize: period %d shorter than quantum %d", rt.T, q)
	}
	if e > p {
		return model.Weight{}, fmt.Errorf("quantize: %s infeasible at Q=%d (e=%d > p=%d)", rt.Name, q, e, p)
	}
	return model.W(e, p), nil
}

// Weights quantizes a whole task set; it fails if any task is infeasible
// at this quantum size.
func Weights(rts []RealTask, q, overhead int64) ([]model.Weight, error) {
	out := make([]model.Weight, len(rts))
	for i, rt := range rts {
		w, err := Weight(rt, q, overhead)
		if err != nil {
			return nil, err
		}
		out[i] = w
	}
	return out, nil
}

// RealUtilization returns Σ C/T exactly — the lower bound no quantization
// can beat.
func RealUtilization(rts []RealTask) rat.Rat {
	u := rat.Zero
	for _, rt := range rts {
		u = u.Add(rat.New(rt.C, rt.T))
	}
	return u
}

// Point is one quantum size in a Curve.
type Point struct {
	Q           int64
	Utilization rat.Rat // Σ e(Q)/p(Q) after quantization + overhead
	Feasible    bool    // every task quantizable and utilization ≤ M
}

// Curve evaluates candidate quantum sizes for the task set on m
// processors. Infeasible candidates (some task unquantizable) are reported
// with zero utilization and Feasible = false.
func Curve(rts []RealTask, m int, overhead int64, candidates []int64) []Point {
	out := make([]Point, 0, len(candidates))
	for _, q := range candidates {
		pt := Point{Q: q}
		if ws, err := Weights(rts, q, overhead); err == nil {
			u := rat.Zero
			for _, w := range ws {
				u = u.Add(w.Rat())
			}
			pt.Utilization = u
			pt.Feasible = u.LessEq(rat.FromInt(int64(m)))
		}
		out = append(out, pt)
	}
	return out
}

// Best returns the largest feasible quantum size from candidates — the
// natural pick, since larger quanta mean fewer scheduler invocations and
// preemptions for the same guarantee. It returns an error when no
// candidate is feasible.
func Best(rts []RealTask, m int, overhead int64, candidates []int64) (int64, error) {
	best := int64(-1)
	for _, pt := range Curve(rts, m, overhead, candidates) {
		if pt.Feasible && pt.Q > best {
			best = pt.Q
		}
	}
	if best < 0 {
		return 0, fmt.Errorf("quantize: no feasible quantum size among %v on M=%d", candidates, m)
	}
	return best, nil
}
