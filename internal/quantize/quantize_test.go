package quantize

import (
	"testing"

	"desyncpfair/internal/model"
	"desyncpfair/internal/rat"
	"desyncpfair/internal/sfq"
)

func TestWeightRounding(t *testing.T) {
	rt := RealTask{Name: "t", C: 2500, T: 10000} // 0.25 utilization
	cases := []struct {
		q, overhead int64
		want        model.Weight
	}{
		{1000, 0, model.W(3, 10)},   // ⌈2.5⌉/⌊10⌋
		{2500, 0, model.W(1, 4)},    // exact
		{3000, 0, model.W(1, 3)},    // ⌈0.83⌉/⌊3.33⌋
		{1000, 100, model.W(3, 10)}, // ⌈2500/900⌉ = 3
		{1000, 200, model.W(4, 10)}, // ⌈2500/800⌉ = 4
	}
	for _, c := range cases {
		got, err := Weight(rt, c.q, c.overhead)
		if err != nil {
			t.Errorf("Q=%d ovh=%d: %v", c.q, c.overhead, err)
			continue
		}
		if got != c.want {
			t.Errorf("Q=%d ovh=%d: weight %v, want %v", c.q, c.overhead, got, c.want)
		}
	}
}

func TestWeightErrors(t *testing.T) {
	good := RealTask{Name: "g", C: 100, T: 1000}
	if _, err := Weight(good, 0, 0); err == nil {
		t.Error("Q=0 accepted")
	}
	if _, err := Weight(good, 100, 100); err == nil {
		t.Error("overhead = Q accepted")
	}
	if _, err := Weight(good, 2000, 0); err == nil {
		t.Error("quantum longer than period accepted")
	}
	if _, err := Weight(RealTask{Name: "b", C: 0, T: 10}, 1, 0); err == nil {
		t.Error("zero cost accepted")
	}
	if _, err := Weight(RealTask{Name: "b", C: 20, T: 10}, 1, 0); err == nil {
		t.Error("C > T accepted")
	}
	// A tight task becomes infeasible at coarse quanta: C=900, T=1000.
	tight := RealTask{Name: "tight", C: 900, T: 1000}
	if _, err := Weight(tight, 600, 0); err == nil {
		t.Error("e > p not detected") // ⌈1.5⌉=2 > ⌊1.67⌋=1
	}
}

func TestCurveMonotoneInflation(t *testing.T) {
	rts := []RealTask{
		{"video", 3300, 10000},
		{"audio", 900, 5000},
		{"ctrl", 1700, 20000},
	}
	real := RealUtilization(rts)
	pts := Curve(rts, 1, 0, []int64{100, 500, 1000, 2500, 5000})
	for _, pt := range pts {
		if !pt.Feasible {
			continue
		}
		if pt.Utilization.Less(real) {
			t.Errorf("Q=%d: quantized utilization %s below real %s", pt.Q, pt.Utilization, real)
		}
	}
	// Finer quanta approach the real utilization.
	if pts[0].Utilization.Sub(real).Float64() > 0.05 {
		t.Errorf("Q=100 inflation too large: %s vs %s", pts[0].Utilization, real)
	}
	// Coarse quanta inflate more than fine ones here.
	if !pts[0].Utilization.Less(pts[4].Utilization) {
		t.Errorf("inflation not growing: Q=100 → %s, Q=5000 → %s", pts[0].Utilization, pts[4].Utilization)
	}
}

func TestBestPicksLargestFeasible(t *testing.T) {
	rts := []RealTask{
		{"a", 4500, 10000},
		{"b", 4500, 10000},
	}
	// Real utilization 0.9 on M=1. Feasibility is NOT monotone in Q:
	// Q=1000 gives 5/10 each (total 1.0, fits); Q=2000 gives ⌈2.25⌉=3 over
	// ⌊5⌋=5 each (total 1.2, overload); Q=5000 gives 1/2 each (total 1.0,
	// fits again because 5000 divides both parameters well).
	pts := Curve(rts, 1, 0, []int64{100, 1000, 2000, 5000})
	if !pts[1].Feasible || pts[2].Feasible || !pts[3].Feasible {
		t.Errorf("feasibility pattern wrong: %+v", pts)
	}
	q, err := Best(rts, 1, 0, []int64{100, 1000, 2000, 5000})
	if err != nil {
		t.Fatal(err)
	}
	if q != 5000 { // largest feasible
		t.Errorf("best Q = %d, want 5000", q)
	}
	if _, err := Best([]RealTask{{"x", 999, 1000}}, 1, 0, []int64{600, 700}); err == nil {
		t.Error("no feasible candidate should error")
	}
}

// End-to-end: quantize a real workload, schedule it with PD², zero misses.
func TestQuantizedWorkloadSchedules(t *testing.T) {
	rts := []RealTask{
		{"cam0", 3300, 10000},
		{"cam1", 3300, 10000},
		{"fusion", 9000, 20000},
		{"plan", 4000, 40000},
	}
	const m = 2
	q, err := Best(rts, m, 50, []int64{500, 1000, 2000})
	if err != nil {
		t.Fatal(err)
	}
	ws, err := Weights(rts, q, 50)
	if err != nil {
		t.Fatal(err)
	}
	sys := model.Periodic(ws, 3*ws[0].P)
	s, err := sfq.Run(sys, sfq.Options{M: m})
	if err != nil {
		t.Fatal(err)
	}
	if s.MissCount() != 0 {
		t.Errorf("quantized workload missed deadlines at Q=%d", q)
	}
}

func TestRealUtilization(t *testing.T) {
	rts := []RealTask{{"a", 1, 2}, {"b", 1, 4}}
	if got := RealUtilization(rts); !got.Equal(rat.New(3, 4)) {
		t.Errorf("real utilization = %s", got)
	}
}
