package trace

import (
	"fmt"
	"html/template"
	"io"
	"sort"

	"desyncpfair/internal/sched"
)

// GanttCSS is the style sheet shared by WriteHTML and report tooling that
// embeds HTMLFragment outputs.
const GanttCSS = `
body { font: 13px/1.4 system-ui, sans-serif; margin: 1.5em; }
h1 { font-size: 1.3em; } h2 { font-size: 1.1em; margin-top: 1.6em; }
pre { background: #f7f7f7; padding: .8em; border-radius: 4px; overflow-x: auto; }
.meta { color: #555; margin-bottom: 1em; }
.lane { position: relative; height: 34px; margin: 4px 0; background: #f3f3f3;
        border-radius: 4px; }
.lane .plabel { position: absolute; left: -3.2em; top: 8px; color: #666; }
.block { position: absolute; top: 3px; height: 28px; border-radius: 3px;
         border: 1px solid rgba(0,0,0,.25); box-sizing: border-box;
         font-size: 11px; overflow: hidden; text-align: center;
         line-height: 26px; white-space: nowrap; }
.block.tardy { border: 2px solid #c00; }
.chart { margin-left: 3.5em; margin-bottom: 1em; }
`

type ganttBlock struct {
	Label    string
	Tooltip  string
	LeftPct  float64
	WidthPct float64
	Color    template.CSS
	Tardy    bool
}

type ganttLane struct {
	Proc   int
	Blocks []ganttBlock
}

type ganttChart struct {
	Meta  string
	Lanes []ganttLane
}

// HTMLFragment renders the schedule as a Gantt-chart HTML fragment (no
// document shell); pair it with GanttCSS. WriteHTML wraps it in a full
// page.
func HTMLFragment(s *sched.Schedule) (template.HTML, error) {
	makespan := s.Makespan()
	span := makespan.Float64()
	if span <= 0 {
		span = 1
	}
	chart := ganttChart{
		Meta:  fmt.Sprintf("%s under %s, M=%d, makespan %s", s.Algo, s.Model, s.M, makespan),
		Lanes: make([]ganttLane, s.M),
	}
	for p := range chart.Lanes {
		chart.Lanes[p].Proc = p
	}
	asgs := append([]*sched.Assignment(nil), s.Assignments()...)
	sort.Slice(asgs, func(i, j int) bool { return asgs[i].Start.Less(asgs[j].Start) })
	for _, a := range asgs {
		chart.Lanes[a.Proc].Blocks = append(chart.Lanes[a.Proc].Blocks, ganttBlock{
			Label: a.Sub.String(),
			Tooltip: fmt.Sprintf("%s window [%d,%d) runs [%s,%s) tardiness %s",
				a.Sub, a.Sub.Release(), a.Sub.Deadline(), a.Start, a.Finish(), s.Tardiness(a.Sub)),
			LeftPct:  100 * a.Start.Float64() / span,
			WidthPct: 100 * a.Cost.Float64() / span,
			Color:    taskColor(a.Sub.Task.ID),
			Tardy:    s.Tardiness(a.Sub).Sign() > 0,
		})
	}
	var buf fragmentBuffer
	if err := fragmentTmpl.Execute(&buf, chart); err != nil {
		return "", err
	}
	return template.HTML(buf.b), nil
}

type fragmentBuffer struct{ b []byte }

func (f *fragmentBuffer) Write(p []byte) (int, error) {
	f.b = append(f.b, p...)
	return len(p), nil
}

// WriteHTML renders the schedule as a self-contained HTML page: one lane
// per processor, one block per quantum, positioned proportionally to exact
// rational times and coloured per task. Blocks carry tooltips with the
// subtask's window and tardiness. Useful for inspecting DVQ schedules
// whose rational start times are hard to read in ASCII.
func WriteHTML(w io.Writer, s *sched.Schedule, title string) error {
	frag, err := HTMLFragment(s)
	if err != nil {
		return err
	}
	return pageTmpl.Execute(w, struct {
		Title    string
		CSS      template.CSS
		Fragment template.HTML
	}{Title: title, CSS: GanttCSS, Fragment: frag})
}

// taskColor assigns a stable pastel colour per task ID.
func taskColor(id int) template.CSS {
	hue := (id * 137) % 360 // golden-angle spacing
	return template.CSS(fmt.Sprintf("hsl(%d, 65%%, 70%%)", hue))
}

var fragmentTmpl = template.Must(template.New("gantt").Parse(`<div class="meta">{{.Meta}}</div>
<div class="chart">
{{range .Lanes}}<div class="lane"><span class="plabel">P{{.Proc}}</span>
{{range .Blocks}}<div class="block{{if .Tardy}} tardy{{end}}" title="{{.Tooltip}}" style="left:{{printf "%.4f" .LeftPct}}%;width:{{printf "%.4f" .WidthPct}}%;background:{{.Color}}">{{.Label}}</div>
{{end}}</div>
{{end}}</div>
`))

var pageTmpl = template.Must(template.New("page").Parse(`<!DOCTYPE html>
<html><head><meta charset="utf-8"><title>{{.Title}}</title>
<style>{{.CSS}}</style></head><body>
<h1>{{.Title}}</h1>
{{.Fragment}}
</body></html>
`))
