package trace

import (
	"strings"
	"testing"

	"desyncpfair/internal/core"
	"desyncpfair/internal/model"
	"desyncpfair/internal/rat"
	"desyncpfair/internal/sched"
	"desyncpfair/internal/sfq"
)

func fig1System() *model.System {
	sys := model.NewSystem()
	sys.AddPeriodic("T", model.W(3, 4), 4)
	return sys
}

func fig2System() *model.System {
	return model.Periodic([]model.Weight{
		model.W(1, 6), model.W(1, 6), model.W(1, 6),
		model.W(1, 2), model.W(1, 2), model.W(1, 2),
	}, 6)
}

func TestRenderWindowsFig1a(t *testing.T) {
	sys := fig1System()
	out := RenderWindows(sys, sys.Tasks[0])
	for _, want := range []string{"T_1", "T_2", "T_3"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %s in:\n%s", want, out)
		}
	}
	// T_1's window [0,2): opening bracket at column for slot 0.
	lines := strings.Split(out, "\n")
	var t1 string
	for _, l := range lines {
		if strings.HasPrefix(l, "T_1") {
			t1 = l
		}
	}
	if !strings.Contains(t1, "[") || !strings.Contains(t1, ")") {
		t.Errorf("T_1 row lacks window brackets: %q", t1)
	}
	if strings.Index(t1, "[") > strings.Index(t1, ")") {
		t.Errorf("T_1 window reversed: %q", t1)
	}
}

func TestRenderWindowsEarlyRelease(t *testing.T) {
	sys := model.NewSystem()
	tk := sys.AddTask("T", model.W(1, 2))
	sys.AddSubtask(tk, 1, 0, 0)
	sys.AddSubtask(tk, 2, 0, 1) // eligible one slot before release 2
	out := RenderWindows(sys, tk)
	if !strings.Contains(out, "<") {
		t.Errorf("early-release marker missing:\n%s", out)
	}
}

func TestRenderWindowsEmptyTask(t *testing.T) {
	sys := model.NewSystem()
	tk := sys.AddTask("T", model.W(1, 2))
	if out := RenderWindows(sys, tk); !strings.Contains(out, "no subtasks") {
		t.Errorf("unexpected: %q", out)
	}
}

func TestRenderSlotsFig2a(t *testing.T) {
	sys := fig2System()
	s, err := sfq.Run(sys, sfq.Options{M: 2})
	if err != nil {
		t.Fatal(err)
	}
	out := RenderSlots(s)
	if !strings.Contains(out, "P0") || !strings.Contains(out, "P1") {
		t.Errorf("processor rows missing:\n%s", out)
	}
	if !strings.Contains(out, "D_1") || !strings.Contains(out, "F_3") {
		t.Errorf("subtask labels missing:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 { // ruler + 2 processors
		t.Errorf("line count %d:\n%s", len(lines), out)
	}
}

func TestRenderTimelineShowsRationalTimes(t *testing.T) {
	sys := fig2System()
	y := func(s *model.Subtask) rat.Rat {
		if (s.Task.Name == "A" || s.Task.Name == "F") && s.Index == 1 {
			return rat.New(3, 4)
		}
		return rat.One
	}
	dq, err := core.RunDVQ(sys, core.DVQOptions{M: 2, Yield: y})
	if err != nil {
		t.Fatal(err)
	}
	out := RenderTimeline(dq)
	if !strings.Contains(out, "7/4") {
		t.Errorf("rational endpoint 7/4 missing:\n%s", out)
	}
	if !strings.Contains(out, "B_1@[7/4,") {
		t.Errorf("B_1 start at 7/4 missing:\n%s", out)
	}
}

func TestWriteCSV(t *testing.T) {
	sys := fig2System()
	s, err := sfq.Run(sys, sfq.Options{M: 2})
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := WriteCSV(&b, s); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 1+sys.NumSubtasks() {
		t.Errorf("csv line count = %d, want %d", len(lines), 1+sys.NumSubtasks())
	}
	if !strings.HasPrefix(lines[0], "task,index,proc,start") {
		t.Errorf("header = %q", lines[0])
	}
	// Rows sorted by start: first data row is slot 0.
	if !strings.Contains(lines[1], ",0,") {
		t.Errorf("first row not at time 0: %q", lines[1])
	}
}

func TestWriteHTML(t *testing.T) {
	sys := fig2System()
	y := func(s *model.Subtask) rat.Rat {
		if (s.Task.Name == "A" || s.Task.Name == "F") && s.Index == 1 {
			return rat.New(3, 4)
		}
		return rat.One
	}
	dq, err := core.RunDVQ(sys, core.DVQOptions{M: 2, Yield: y})
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := WriteHTML(&b, dq, "Fig. 2(b)"); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"<!DOCTYPE html>", "Fig. 2(b)", "P0", "class=\"block", "F_2"} {
		if !strings.Contains(out, want) {
			t.Errorf("html missing %q", want)
		}
	}
	// The tardy subtask F_2 must be flagged.
	if !strings.Contains(out, "block tardy") {
		t.Error("tardy block styling missing")
	}
	// Tooltips carry the exact rational times.
	if !strings.Contains(out, "7/4") {
		t.Error("rational endpoints missing from tooltips")
	}
}

func TestWriteHTMLEmptySchedule(t *testing.T) {
	sys := model.NewSystem()
	s := schedNew(sys)
	var b strings.Builder
	if err := WriteHTML(&b, s, "empty"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "empty") {
		t.Error("title missing")
	}
}

// schedNew builds an empty 1-processor schedule for edge-case tests.
func schedNew(sys *model.System) *sched.Schedule {
	return sched.New(sys, 1, "test", "SFQ")
}

func TestRenderPDBTrace(t *testing.T) {
	res, err := core.RunPDB(fig2System(), core.PDBOptions{M: 2})
	if err != nil {
		t.Fatal(err)
	}
	out := RenderPDBTrace(res.Slots)
	for _, want := range []string{"t=2", "EB={D_2,E_2,F_2}", "DB={B_1,C_1}", "p=1", "PB={F_3}"} {
		if !strings.Contains(out, want) {
			t.Errorf("PDB trace missing %q in:\n%s", want, out)
		}
	}
}
