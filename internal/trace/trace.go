// Package trace renders schedules and task windows as ASCII diagrams in
// the style of the paper's figures, and exports schedules as CSV for
// external tooling.
package trace

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"desyncpfair/internal/core"
	"desyncpfair/internal/model"
	"desyncpfair/internal/sched"
)

// RenderWindows draws the PF-windows of every released subtask of a task,
// one row per subtask, newest at the top — the layout of Fig. 1. A window
// [r, d) is drawn as `[==…=)` over its slots; an eligibility earlier than
// the release (early releasing) is marked with `<` padding.
func RenderWindows(sys *model.System, task *model.Task) string {
	seq := sys.Subtasks(task)
	if len(seq) == 0 {
		return fmt.Sprintf("%s: (no subtasks)\n", task)
	}
	horizon := int64(0)
	for _, s := range seq {
		if d := s.Deadline(); d > horizon {
			horizon = d
		}
	}
	const cell = 3 // columns per slot
	var b strings.Builder
	for i := len(seq) - 1; i >= 0; i-- {
		s := seq[i]
		row := make([]byte, horizon*cell)
		for j := range row {
			row[j] = ' '
		}
		for t := s.Elig; t < s.Release(); t++ {
			row[t*cell] = '<'
		}
		r, d := s.Release(), s.Deadline()
		for j := r * cell; j < d*cell; j++ {
			row[j] = '='
		}
		row[r*cell] = '['
		row[d*cell-1] = ')'
		fmt.Fprintf(&b, "%-6s %s\n", s.String(), string(row))
	}
	// Ruler.
	fmt.Fprintf(&b, "%-6s ", "")
	for t := int64(0); t <= horizon; t++ {
		fmt.Fprintf(&b, "%-*d", cell, t)
	}
	b.WriteString("\n")
	return b.String()
}

// RenderSlots draws a slot-based (SFQ-model) schedule as a processor×slot
// grid, the layout of Figs. 2(a), 2(c) and 6.
func RenderSlots(s *sched.Schedule) string {
	horizon := s.Makespan().Ceil()
	grid := make([][]string, s.M)
	for p := range grid {
		grid[p] = make([]string, horizon)
	}
	for _, a := range s.Assignments() {
		grid[a.Proc][a.Slot()] = a.Sub.String()
	}
	width := 5
	for _, row := range grid {
		for _, c := range row {
			if len(c)+1 > width {
				width = len(c) + 1
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-4s|", "slot")
	for t := int64(0); t < horizon; t++ {
		fmt.Fprintf(&b, "%*d", width, t)
	}
	b.WriteString("\n")
	for p, row := range grid {
		fmt.Fprintf(&b, "P%-3d|", p)
		for _, c := range row {
			if c == "" {
				c = "."
			}
			fmt.Fprintf(&b, "%*s", width, c)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// RenderTimeline draws a DVQ-model schedule as per-processor interval
// lists with exact rational endpoints, the information content of
// Figs. 2(b), 3 and 4(a).
func RenderTimeline(s *sched.Schedule) string {
	byProc := make([][]*sched.Assignment, s.M)
	for _, a := range s.Assignments() {
		byProc[a.Proc] = append(byProc[a.Proc], a)
	}
	var b strings.Builder
	for p, list := range byProc {
		sort.Slice(list, func(i, j int) bool { return list[i].Start.Less(list[j].Start) })
		fmt.Fprintf(&b, "P%d:", p)
		for _, a := range list {
			fmt.Fprintf(&b, " %s@[%s,%s)", a.Sub, a.Start, a.Finish())
		}
		b.WriteString("\n")
	}
	return b.String()
}

// WriteCSV emits one row per assignment with the schedule's key quantities.
func WriteCSV(w io.Writer, s *sched.Schedule) error {
	if _, err := fmt.Fprintln(w, "task,index,proc,start,cost,finish,release,deadline,tardiness"); err != nil {
		return err
	}
	asgs := append([]*sched.Assignment(nil), s.Assignments()...)
	sort.Slice(asgs, func(i, j int) bool {
		if c := asgs[i].Start.Cmp(asgs[j].Start); c != 0 {
			return c < 0
		}
		return asgs[i].Proc < asgs[j].Proc
	})
	for _, a := range asgs {
		_, err := fmt.Fprintf(w, "%s,%d,%d,%s,%s,%s,%d,%d,%s\n",
			a.Sub.Task, a.Sub.Index, a.Proc, a.Start, a.Cost, a.Finish(),
			a.Sub.Release(), a.Sub.Deadline(), s.Tardiness(a.Sub))
		if err != nil {
			return err
		}
	}
	return nil
}

// RenderPDBTrace draws the per-slot PD^B decision record: the EB/PB/DB
// partition, p, and the picks in decision order — the data of the paper's
// running examples ("at time 2, D_2, E_2, F_2 are in EB(2) …").
func RenderPDBTrace(slots []core.SlotInfo) string {
	var b strings.Builder
	names := func(subs []*model.Subtask) string {
		if len(subs) == 0 {
			return "∅"
		}
		parts := make([]string, len(subs))
		for i, s := range subs {
			parts[i] = s.String()
		}
		return strings.Join(parts, ",")
	}
	for _, sl := range slots {
		fmt.Fprintf(&b, "t=%-3d p=%d  EB={%s}  PB={%s}  DB={%s}  → %s\n",
			sl.T, sl.P, names(sl.EB), names(sl.PB), names(sl.DB), names(sl.Picks))
	}
	return b.String()
}
