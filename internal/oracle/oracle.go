// Package oracle provides an exhaustive-search feasibility checker for
// tiny task systems: an implementation-independent ground truth against
// which the polynomial-time schedulers are cross-validated. Exists answers
// "is there ANY valid Pfair schedule?" by trying every slot-by-slot
// allocation, so agreement with PD² on feasible instances (and with the
// counting argument on infeasible ones) tests the whole stack — window
// formulas, engine, validity checker — without sharing code paths with it.
//
// The search is exponential; keep instances to roughly a dozen subtasks.
package oracle

import (
	"fmt"
	"strings"

	"desyncpfair/internal/model"
)

// MaxSubtasks caps the instance size Exists accepts, as a guard against
// accidentally feeding it a full workload.
const MaxSubtasks = 16

// Exists reports whether a valid schedule exists for sys on m processors:
// every released subtask scheduled in an integral slot within its
// IS-window [e, d), at most m subtasks per slot, subtasks of a task in
// released order and never in the same slot.
func Exists(sys *model.System, m int) (bool, error) {
	n := sys.NumSubtasks()
	if n > MaxSubtasks {
		return false, fmt.Errorf("oracle: %d subtasks exceeds the cap of %d", n, MaxSubtasks)
	}
	if m < 1 {
		return false, fmt.Errorf("oracle: m = %d", m)
	}
	s := &searcher{sys: sys, m: m, horizon: sys.Horizon(), memo: map[string]bool{}}
	s.cursors = make([]int, len(sys.Tasks))
	return s.slot(0), nil
}

type searcher struct {
	sys     *model.System
	m       int
	horizon int64
	cursors []int
	memo    map[string]bool
}

func (s *searcher) key(t int64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d:", t)
	for _, c := range s.cursors {
		fmt.Fprintf(&b, "%d,", c)
	}
	return b.String()
}

// slot tries every subset of ready heads for slot t and recurses.
func (s *searcher) slot(t int64) bool {
	done := true
	for ti, task := range s.sys.Tasks {
		if s.cursors[ti] < len(s.sys.Subtasks(task)) {
			done = false
			break
		}
	}
	if done {
		return true
	}
	if t > s.horizon {
		return false
	}
	k := s.key(t)
	if v, ok := s.memo[k]; ok {
		return v
	}

	// Gather ready heads and check for already-hopeless subtasks.
	type cand struct {
		taskID int
		sub    *model.Subtask
	}
	var ready []cand
	for ti, task := range s.sys.Tasks {
		seq := s.sys.Subtasks(task)
		c := s.cursors[ti]
		if c >= len(seq) {
			continue
		}
		head := seq[c]
		if head.Deadline() <= t {
			s.memo[k] = false // its window has closed: this branch is dead
			return false
		}
		if head.Elig <= t {
			ready = append(ready, cand{ti, head})
		}
	}

	// Enumerate all subsets of ready with size ≤ m. Scheduling more never
	// forecloses options, but subsets are enumerated exhaustively anyway so
	// the oracle's correctness does not rest on that exchange argument.
	ok := false
	var choose func(i, used int)
	choose = func(i, used int) {
		if ok {
			return
		}
		if i == len(ready) || used == s.m {
			if s.slot(t + 1) {
				ok = true
			}
			return
		}
		// Take ready[i].
		s.cursors[ready[i].taskID]++
		choose(i+1, used+1)
		s.cursors[ready[i].taskID]--
		if ok {
			return
		}
		// Skip ready[i].
		choose(i+1, used)
	}
	choose(0, 0)
	s.memo[k] = ok
	return ok
}
