package oracle

import (
	"math/rand"
	"testing"

	"desyncpfair/internal/gen"
	"desyncpfair/internal/model"
	"desyncpfair/internal/sfq"
)

func TestExistsOnTinyFeasibleSystems(t *testing.T) {
	// Cross-validation: random tiny full-utilization systems are feasible
	// (Σwt ≤ M), so the oracle must find a schedule, and PD² must produce
	// one too — two independent answers to the same question.
	rng := rand.New(rand.NewSource(99))
	checked := 0
	for trial := 0; trial < 60 && checked < 25; trial++ {
		m := 1 + rng.Intn(2)
		q := int64(3 + rng.Intn(3))
		n := m + rng.Intn(2)
		if int64(n) > int64(m)*q {
			continue
		}
		ws := gen.GridWeights(rng, n, q, int64(m)*q, gen.MixedWeights)
		sys := gen.System(rng, ws, gen.SystemOptions{
			Horizon:    q + int64(rng.Intn(int(q))),
			JitterProb: 20,
			MaxJitter:  1,
			OmitProb:   10,
		})
		if sys.NumSubtasks() == 0 || sys.NumSubtasks() > MaxSubtasks {
			continue
		}
		checked++
		ok, err := Exists(sys, m)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("oracle found no schedule for a feasible system (M=%d, %d subtasks)", m, sys.NumSubtasks())
		}
		s, err := sfq.Run(sys, sfq.Options{M: m})
		if err != nil {
			t.Fatal(err)
		}
		if err := s.ValidatePfair(); err != nil {
			t.Fatalf("PD² disagreed with the oracle: %v", err)
		}
	}
	if checked < 10 {
		t.Fatalf("only %d instances checked", checked)
	}
}

func TestExistsRejectsOverloadedSlots(t *testing.T) {
	// Three weight-1 tasks on two processors: every slot needs three
	// processors. No valid schedule exists at any horizon.
	sys := model.Periodic([]model.Weight{model.W(1, 1), model.W(1, 1), model.W(1, 1)}, 2)
	ok, err := Exists(sys, 2)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("oracle accepted an overloaded system")
	}
	// The same three tasks fit on three processors.
	ok, err = Exists(sys, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("oracle rejected a trivially feasible system")
	}
}

func TestExistsTightWindowConflict(t *testing.T) {
	// Two weight-1 tasks and one weight-1/2 task on two processors: total
	// utilization 5/2 > 2, and the conflict bites within the first two
	// slots (five subtask-slots of demand against four of supply in [0,2)).
	sys := model.Periodic([]model.Weight{model.W(1, 1), model.W(1, 1), model.W(1, 2)}, 2)
	ok, err := Exists(sys, 2)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("oracle accepted util 5/2 on M=2")
	}
}

func TestExistsRespectsGISStructure(t *testing.T) {
	// A GIS task with an omitted subtask and an IS shift: feasible alone.
	sys := model.NewSystem()
	tk := sys.AddTask("T", model.W(3, 4))
	sys.AddSubtask(tk, 1, 0, 0)
	sys.AddSubtask(tk, 3, 1, 3)
	ok, err := Exists(sys, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("feasible GIS fragment rejected")
	}
}

func TestExistsPredecessorOrdering(t *testing.T) {
	// One task with two subtasks whose windows overlap: both must fit, in
	// order, never in the same slot. Weight 2/3: T_1 [0,2), T_2 [1,3).
	sys := model.NewSystem()
	tk := sys.AddTask("T", model.W(2, 3))
	sys.AddSubtask(tk, 1, 0, 0)
	sys.AddSubtask(tk, 2, 0, 1)
	ok, err := Exists(sys, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("sequential windows rejected")
	}
	// Shrink to an impossible case: force both into slot 0 by eligibility
	// and deadline — not constructible under valid windows, so instead
	// check a 2-subtask task against a competitor occupying every slot.
	sys2 := model.NewSystem()
	tk2 := sys2.AddTask("T", model.W(2, 3))
	sys2.AddSubtask(tk2, 1, 0, 0)
	sys2.AddSubtask(tk2, 2, 0, 1)
	hog := sys2.AddTask("H", model.W(1, 1))
	for i := int64(1); i <= 3; i++ {
		s := model.Subtask{Task: hog, Index: i}
		sys2.AddSubtask(hog, i, 0, s.Release())
	}
	// Utilization 2/3 + 1 = 5/3 > 1: infeasible on one processor.
	ok, err = Exists(sys2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("oracle accepted util 5/3 on M=1")
	}
}

func TestExistsGuards(t *testing.T) {
	big := model.Periodic([]model.Weight{model.W(9, 10), model.W(9, 10)}, 20)
	if _, err := Exists(big, 2); err == nil {
		t.Error("oversized instance accepted")
	}
	tiny := model.Periodic([]model.Weight{model.W(1, 2)}, 2)
	if _, err := Exists(tiny, 0); err == nil {
		t.Error("m = 0 accepted")
	}
}

// The empty system is trivially schedulable.
func TestExistsEmpty(t *testing.T) {
	ok, err := Exists(model.NewSystem(), 1)
	if err != nil || !ok {
		t.Fatalf("empty system: %v %v", ok, err)
	}
}

// Agreement with PD² in the two theoretically guaranteed directions:
// (i) the oracle finding no schedule forces PD² to miss too (soundness of
// the oracle's "no"), and (ii) on util ≤ M instances PD² validity forces
// the oracle's "yes" (PD² optimality holds there). On finite prefixes with
// util > M, a schedule can exist that greedy PD² does not find — that case
// is only counted, not asserted.
func TestOracleAgreesWithPD2(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	agreeTrue, agreeFalse, pd2Suboptimal := 0, 0, 0
	for trial := 0; trial < 400 && (agreeTrue < 15 || agreeFalse < 15); trial++ {
		m := 1 + rng.Intn(2)
		// Random small weights, sometimes exceeding M in total.
		n := 1 + rng.Intn(4)
		ws := gen.VariedWeights(rng, n, 4, gen.MixedWeights)
		sys := gen.System(rng, ws, gen.SystemOptions{Horizon: int64(2 + rng.Intn(4))})
		if sys.NumSubtasks() == 0 || sys.NumSubtasks() > 10 {
			continue
		}
		ok, err := Exists(sys, m)
		if err != nil {
			t.Fatal(err)
		}
		s, err := sfq.Run(sys, sfq.Options{M: m})
		if err != nil {
			t.Fatal(err)
		}
		pd2Valid := s.ValidatePfair() == nil
		if !ok && pd2Valid {
			t.Fatalf("trial %d: PD² produced a valid schedule the oracle says cannot exist", trial)
		}
		if ok && !pd2Valid {
			if sys.Feasible(m) {
				t.Fatalf("trial %d: feasible system (util %s ≤ %d), oracle yes, but PD² missed",
					trial, sys.TotalUtilization(), m)
			}
			pd2Suboptimal++ // legal: finite over-utilized prefix
			continue
		}
		if ok {
			agreeTrue++
		} else {
			agreeFalse++
		}
	}
	if agreeTrue < 10 || agreeFalse < 10 {
		t.Fatalf("insufficient coverage: %d feasible, %d infeasible (%d greedy gaps)",
			agreeTrue, agreeFalse, pd2Suboptimal)
	}
}

// FuzzOracleVsPD2 fuzzes the two theoretically guaranteed agreement
// directions between the exhaustive oracle and PD².
func FuzzOracleVsPD2(f *testing.F) {
	f.Add(int64(1), uint8(0), uint8(2))
	f.Add(int64(77), uint8(1), uint8(3))
	f.Add(int64(-5), uint8(0), uint8(1))
	f.Fuzz(func(t *testing.T, seed int64, mRaw, nRaw uint8) {
		rng := rand.New(rand.NewSource(seed))
		m := 1 + int(mRaw%2)
		n := 1 + int(nRaw%4)
		ws := gen.VariedWeights(rng, n, 4, gen.MixedWeights)
		sys := gen.System(rng, ws, gen.SystemOptions{Horizon: int64(2 + rng.Intn(3))})
		if sys.NumSubtasks() == 0 || sys.NumSubtasks() > 10 {
			t.Skip()
		}
		ok, err := Exists(sys, m)
		if err != nil {
			t.Fatal(err)
		}
		s, err := sfq.Run(sys, sfq.Options{M: m})
		if err != nil {
			t.Fatal(err)
		}
		pd2Valid := s.ValidatePfair() == nil
		if !ok && pd2Valid {
			t.Fatal("PD² produced a schedule the oracle proves impossible")
		}
		if ok && !pd2Valid && sys.Feasible(m) {
			t.Fatal("feasible instance: oracle yes, PD² missed")
		}
	})
}
