package faultfs

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"

	"desyncpfair/internal/wal"
)

func TestCrashAtByteIsStickyAndPartial(t *testing.T) {
	dir := t.TempDir()
	fs := New(Options{CrashAtByte: 10})
	f, err := fs.Create(filepath.Join(dir, "f"))
	if err != nil {
		t.Fatal(err)
	}
	if n, err := f.Write([]byte("1234567")); n != 7 || err != nil {
		t.Fatalf("first write = (%d, %v)", n, err)
	}
	// This write crosses the 10-byte budget: 3 bytes land, then crash.
	n, err := f.Write([]byte("abcdefgh"))
	if n != 3 || !errors.Is(err, ErrCrashed) {
		t.Fatalf("crashing write = (%d, %v), want (3, ErrCrashed)", n, err)
	}
	if !fs.Crashed() {
		t.Fatal("fs not marked crashed")
	}
	if fs.BytesWritten() != 10 {
		t.Fatalf("BytesWritten = %d, want 10", fs.BytesWritten())
	}
	// Every later operation fails — the machine is off.
	if _, err := f.Write([]byte("x")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash write error = %v", err)
	}
	if err := f.Sync(); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash sync error = %v", err)
	}
	if _, err := fs.Create(filepath.Join(dir, "g")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash create error = %v", err)
	}
	if err := fs.Rename(filepath.Join(dir, "f"), filepath.Join(dir, "h")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash rename error = %v", err)
	}
	f.Close() // close still works so tests don't leak descriptors

	// What's on disk is exactly the pre-crash prefix.
	data, err := os.ReadFile(filepath.Join(dir, "f"))
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "1234567abc" {
		t.Fatalf("on-disk bytes = %q, want the 10-byte prefix", data)
	}
}

func TestShortWritesAreSeededDeterministic(t *testing.T) {
	run := func(seed int64) (ns []int, errsAt []int) {
		dir := t.TempDir()
		fs := New(Options{Seed: seed, ShortWriteProb: 3})
		f, _ := fs.Create(filepath.Join(dir, "f"))
		defer f.Close()
		for i := 0; i < 32; i++ {
			n, err := f.Write([]byte("0123456789"))
			ns = append(ns, n)
			if err != nil {
				if !errors.Is(err, io.ErrShortWrite) {
					t.Fatalf("write %d: %v, want ErrShortWrite", i, err)
				}
				errsAt = append(errsAt, i)
			}
		}
		return
	}
	ns1, errs1 := run(7)
	ns2, errs2 := run(7)
	if len(errs1) == 0 {
		t.Fatal("ShortWriteProb=3 injected nothing in 32 writes")
	}
	for i := range ns1 {
		if ns1[i] != ns2[i] {
			t.Fatalf("same seed diverged at write %d: %d vs %d", i, ns1[i], ns2[i])
		}
	}
	if len(errs1) != len(errs2) {
		t.Fatalf("same seed, different error counts: %d vs %d", len(errs1), len(errs2))
	}
	if _, errs3 := run(8); len(errs3) == len(errs1) {
		// Different seeds *may* coincide; the positions must differ
		// somewhere across a 32-write run for these two seeds.
		same := true
		for i := range errs3 {
			if i >= len(errs1) || errs3[i] != errs1[i] {
				same = false
				break
			}
		}
		if same {
			t.Log("seeds 7 and 8 produced identical injections (unlikely but legal)")
		}
	}
}

func TestFailSyncAt(t *testing.T) {
	dir := t.TempDir()
	fs := New(Options{FailSyncAt: 2})
	f, _ := fs.Create(filepath.Join(dir, "f"))
	defer f.Close()
	if err := f.Sync(); err != nil {
		t.Fatalf("sync 1: %v", err)
	}
	if err := f.Sync(); !errors.Is(err, ErrInjectedSync) {
		t.Fatalf("sync 2 = %v, want ErrInjectedSync", err)
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("sync 3: %v (only the k-th fails)", err)
	}
}

func TestZeroOptionsInjectNothing(t *testing.T) {
	dir := t.TempDir()
	fs := New(Options{})
	var _ wal.FS = fs // compile-time: faultfs satisfies the wal interface
	f, err := fs.Create(filepath.Join(dir, "f"))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if n, err := f.Write([]byte("abc")); n != 3 || err != nil {
			t.Fatalf("write %d = (%d, %v)", i, n, err)
		}
		if err := f.Sync(); err != nil {
			t.Fatalf("sync %d: %v", i, err)
		}
	}
	f.Close()
}

func TestWALSurvivesCrashMidAppend(t *testing.T) {
	// End-to-end with the real wal: crash the filesystem mid-append and
	// check recovery keeps exactly the acknowledged records.
	dir := t.TempDir()
	fs := New(Options{CrashAtByte: 400})
	l, _, err := wal.Open(dir, wal.Options{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	acked := 0
	for i := 0; i < 100; i++ {
		if _, err := l.Append(wal.Record{Op: wal.OpAdvance, Tenant: "t", At: "1"}); err != nil {
			break
		}
		acked++
	}
	if !fs.Crashed() {
		t.Fatal("400-byte budget never hit in 100 appends")
	}
	if acked == 0 || acked == 100 {
		t.Fatalf("acked = %d, want a mid-run crash", acked)
	}
	l.Close()

	l2, rec, err := wal.Open(dir, wal.Options{})
	if err != nil {
		t.Fatalf("recovery Open: %v", err)
	}
	defer l2.Close()
	if len(rec.Records) != acked {
		t.Fatalf("recovered %d records, want the %d acknowledged (torn tail must not ack)", len(rec.Records), acked)
	}
	if rec.TruncatedBytes == 0 {
		t.Fatal("expected a torn tail at the crash point")
	}
}
