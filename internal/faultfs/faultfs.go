// Package faultfs is a deterministic error-injecting filesystem for the
// crash-recovery suite. It wraps the real filesystem behind wal.FS and,
// driven entirely by its Options (a seed and fixed trigger points — no
// wall clock, no global state), produces the three failure modes a
// write-ahead log must survive:
//
//   - crash-at-byte-N: once cumulative written bytes would exceed the
//     budget, the write lands partially (up to the boundary) and the
//     filesystem dies — every later operation fails. This models pulling
//     the plug mid-write and is what produces torn frames on disk.
//   - seeded short writes: a write persists only half its bytes and
//     returns io.ErrShortWrite, exercising the log's wedge-on-error path.
//   - k-th fsync failure: Sync returns an injected error at a chosen
//     call, exercising group-commit failure handling.
//
// The same Options always produce the same failure at the same point, so
// every crash test is replayable from its seed.
package faultfs

import (
	"errors"
	"io"
	"math/rand"
	"sync"

	"desyncpfair/internal/wal"
)

// ErrCrashed is returned by every operation after the crash point.
var ErrCrashed = errors.New("faultfs: simulated crash")

// ErrInjectedSync is returned by the designated failing Sync call.
var ErrInjectedSync = errors.New("faultfs: injected fsync failure")

// Options selects which faults to inject. The zero value injects nothing.
type Options struct {
	// Seed drives the short-write coin flips.
	Seed int64
	// CrashAtByte, when > 0, kills the filesystem once total bytes
	// written across all files would exceed it: the triggering write
	// persists only up to the budget boundary, then everything returns
	// ErrCrashed.
	CrashAtByte int64
	// ShortWriteProb, when > 0, makes roughly 1-in-N writes persist only
	// half their bytes and return io.ErrShortWrite.
	ShortWriteProb int
	// FailSyncAt, when > 0, makes the k-th Sync call (1-based, across all
	// files) return ErrInjectedSync.
	FailSyncAt int
}

// FS implements wal.FS over the real filesystem with injected faults.
type FS struct {
	under wal.FS
	opt   Options

	mu      sync.Mutex
	rng     *rand.Rand
	written int64
	syncs   int
	crashed bool
}

// New builds a fault-injecting filesystem over the real one.
func New(opt Options) *FS {
	return &FS{under: wal.OSFS{}, opt: opt, rng: rand.New(rand.NewSource(opt.Seed))}
}

// Crashed reports whether the crash point has been reached.
func (fs *FS) Crashed() bool {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.crashed
}

// BytesWritten reports the total bytes persisted so far.
func (fs *FS) BytesWritten() int64 {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.written
}

func (fs *FS) check() error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.crashed {
		return ErrCrashed
	}
	return nil
}

func (fs *FS) Create(path string) (wal.File, error) {
	if err := fs.check(); err != nil {
		return nil, err
	}
	f, err := fs.under.Create(path)
	if err != nil {
		return nil, err
	}
	return &file{fs: fs, f: f}, nil
}

func (fs *FS) Open(path string) (wal.File, error) {
	if err := fs.check(); err != nil {
		return nil, err
	}
	f, err := fs.under.Open(path)
	if err != nil {
		return nil, err
	}
	return &file{fs: fs, f: f}, nil
}

func (fs *FS) Rename(oldPath, newPath string) error {
	if err := fs.check(); err != nil {
		return err
	}
	return fs.under.Rename(oldPath, newPath)
}

func (fs *FS) Remove(path string) error {
	if err := fs.check(); err != nil {
		return err
	}
	return fs.under.Remove(path)
}

func (fs *FS) ReadDir(dir string) ([]string, error) {
	if err := fs.check(); err != nil {
		return nil, err
	}
	return fs.under.ReadDir(dir)
}

func (fs *FS) MkdirAll(dir string) error {
	if err := fs.check(); err != nil {
		return err
	}
	return fs.under.MkdirAll(dir)
}

func (fs *FS) SyncDir(dir string) error {
	if err := fs.check(); err != nil {
		return err
	}
	return fs.under.SyncDir(dir)
}

type file struct {
	fs *FS
	f  wal.File
}

func (f *file) Read(p []byte) (int, error) {
	if err := f.fs.check(); err != nil {
		return 0, err
	}
	return f.f.Read(p)
}

// Write applies the crash budget and short-write injection. The partial
// prefix that lands before a fault models exactly what a torn write
// leaves on disk.
func (f *file) Write(p []byte) (int, error) {
	f.fs.mu.Lock()
	if f.fs.crashed {
		f.fs.mu.Unlock()
		return 0, ErrCrashed
	}
	allow := len(p)
	var failWith error
	if f.fs.opt.CrashAtByte > 0 && f.fs.written+int64(len(p)) > f.fs.opt.CrashAtByte {
		allow = int(f.fs.opt.CrashAtByte - f.fs.written)
		if allow < 0 {
			allow = 0
		}
		f.fs.crashed = true
		failWith = ErrCrashed
	} else if f.fs.opt.ShortWriteProb > 0 && f.fs.rng.Intn(f.fs.opt.ShortWriteProb) == 0 {
		allow = len(p) / 2
		failWith = io.ErrShortWrite
	}
	f.fs.mu.Unlock()

	n := 0
	if allow > 0 {
		var err error
		n, err = f.f.Write(p[:allow])
		if err != nil && failWith == nil {
			failWith = err
		}
	}
	f.fs.mu.Lock()
	f.fs.written += int64(n)
	f.fs.mu.Unlock()
	if failWith != nil {
		return n, failWith
	}
	return n, nil
}

func (f *file) Sync() error {
	f.fs.mu.Lock()
	if f.fs.crashed {
		f.fs.mu.Unlock()
		return ErrCrashed
	}
	f.fs.syncs++
	fail := f.fs.opt.FailSyncAt > 0 && f.fs.syncs == f.fs.opt.FailSyncAt
	f.fs.mu.Unlock()
	if fail {
		return ErrInjectedSync
	}
	return f.f.Sync()
}

func (f *file) Close() error {
	// Close always reaches the real file so tests don't leak descriptors,
	// even after a simulated crash.
	return f.f.Close()
}
