package client

import (
	"context"
	"errors"
	"math/rand"
	"net/http"
	"sync"
	"time"
)

// RetryPolicy makes a Client retry idempotent requests. Only GETs are ever
// retried: every mutating verb in the pfaird API journals a command on the
// server, so resending one after an ambiguous failure could double-apply
// it. A zero policy disables retries.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries including the first.
	// Values ≤ 1 disable retries.
	MaxAttempts int
	// BaseDelay is the backoff before the first retry; each further retry
	// doubles it. Defaults to 10ms when MaxAttempts enables retries.
	BaseDelay time.Duration
	// MaxDelay caps the exponential backoff. Defaults to 1s.
	MaxDelay time.Duration
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.BaseDelay <= 0 {
		p.BaseDelay = 10 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = time.Second
	}
	return p
}

// WithRetry returns a copy of the client that retries idempotent GETs
// under the given policy. The original client is unchanged, so one
// underlying http.Client can serve both retrying and non-retrying views.
func (c *Client) WithRetry(p RetryPolicy) *Client {
	cp := *c
	cp.retry = p.withDefaults()
	return &cp
}

// retryable reports whether an attempt's failure may be transient: a
// transport error that is not the caller's own cancellation, or a 5xx
// reply. 4xx replies are the server answering clearly — never retried.
func retryable(err error) bool {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	var ae *APIError
	if errors.As(err, &ae) {
		return ae.Status >= 500
	}
	return true // transport-level failure
}

var (
	jitterMu  sync.Mutex
	jitterRng = rand.New(rand.NewSource(time.Now().UnixNano()))
)

// backoff sleeps before retry attempt i (0-based), honouring ctx: the
// delay is min(MaxDelay, BaseDelay·2^i), half fixed and half jittered so
// synchronized clients spread out. Returns ctx.Err() if the deadline
// lands mid-sleep.
func backoff(ctx context.Context, p RetryPolicy, i int) error {
	d := p.BaseDelay
	for ; i > 0 && d < p.MaxDelay; i-- {
		d *= 2
	}
	if d > p.MaxDelay {
		d = p.MaxDelay
	}
	jitterMu.Lock()
	d = d/2 + time.Duration(jitterRng.Int63n(int64(d/2)+1))
	jitterMu.Unlock()
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// doRetry runs one request through the retry loop. Non-GET methods pass
// straight through regardless of policy.
func (c *Client) doRetry(ctx context.Context, method, path string, in, out any) error {
	attempts := 1
	if method == http.MethodGet && c.retry.MaxAttempts > 1 {
		attempts = c.retry.MaxAttempts
	}
	var err error
	for i := 0; i < attempts; i++ {
		if i > 0 {
			if serr := backoff(ctx, c.retry, i-1); serr != nil {
				return serr
			}
		}
		if err = c.doOnce(ctx, method, path, in, out); err == nil || !retryable(err) {
			return err
		}
	}
	return err
}
