package client

import (
	"context"
	"errors"
	"math/rand"
	"net/http"
	"sync"
	"time"
)

// RetryPolicy makes a Client retry requests that are safe to resend. Two
// classes are retried:
//
//   - Idempotent requests (every GET, plus POSTs carrying a
//     client-supplied idempotency key — SubmitJobKeyed) on transport
//     errors and 5xx replies: resending cannot double-apply, because the
//     server dedupes keyed submits and GETs change nothing.
//   - 429 backpressure on any retry-enabled request: the server refused
//     the request *before* any state change (a full submit ring), so a
//     resend is always safe. 429s honor the reply's Retry-After, never
//     count against MaxAttempts (backpressure is load, not failure), and
//     are bounded by the caller's context instead.
//
// Non-idempotent mutations are never retried on ambiguous failures —
// resending one could double-apply it. A zero policy disables retries.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries including the first.
	// Values ≤ 1 disable retries.
	MaxAttempts int
	// BaseDelay is the backoff before the first retry; each further retry
	// doubles it. Defaults to 10ms when MaxAttempts enables retries.
	BaseDelay time.Duration
	// MaxDelay caps the exponential backoff. Defaults to 1s.
	MaxDelay time.Duration
	// OnRetry, if set, is called with the attempt's error before each
	// retry sleep — load generators use it to count 429 backpressure
	// without losing it to the retry loop.
	OnRetry func(err error)
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.BaseDelay <= 0 {
		p.BaseDelay = 10 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = time.Second
	}
	return p
}

// WithRetry returns a copy of the client that retries under the given
// policy. The original client is unchanged, so one underlying
// http.Client can serve both retrying and non-retrying views.
func (c *Client) WithRetry(p RetryPolicy) *Client {
	cp := *c
	cp.retry = p.withDefaults()
	return &cp
}

// retryClass sorts an attempt's failure: backpressure (429 — always
// resendable, not counted as a failure), transient (transport errors and
// 5xx — resendable when the request is idempotent), or neither. The
// caller's own cancellation is never retried.
func retryClass(err error) (retry, backpressure bool) {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false, false
	}
	var ae *APIError
	if errors.As(err, &ae) {
		if ae.Status == http.StatusTooManyRequests {
			return true, true
		}
		return ae.Status >= 500, false
	}
	return true, false // transport-level failure
}

var (
	jitterMu  sync.Mutex
	jitterRng = rand.New(rand.NewSource(time.Now().UnixNano()))
)

// backoff sleeps before retry attempt i (0-based), honouring ctx: the
// delay is min(MaxDelay, BaseDelay·2^i), half fixed and half jittered so
// synchronized clients spread out — raised to the server's Retry-After
// when the failed attempt carried one. Returns ctx.Err() if the deadline
// lands mid-sleep.
func backoff(ctx context.Context, p RetryPolicy, i int, last error) error {
	d := p.BaseDelay
	for ; i > 0 && d < p.MaxDelay; i-- {
		d *= 2
	}
	if d > p.MaxDelay {
		d = p.MaxDelay
	}
	jitterMu.Lock()
	d = d/2 + time.Duration(jitterRng.Int63n(int64(d/2)+1))
	jitterMu.Unlock()
	var ae *APIError
	if errors.As(last, &ae) && ae.RetryAfter > d {
		d = ae.RetryAfter
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// doRetry runs one request through the retry loop. GETs are always
// idempotent; mutating requests pass idempotent=true only when a resend
// provably cannot double-apply (keyed submits).
func (c *Client) doRetry(ctx context.Context, method, path string, in, out any, idempotent bool) error {
	if c.retry.MaxAttempts <= 1 {
		return c.doOnce(ctx, method, path, in, out)
	}
	idempotent = idempotent || method == http.MethodGet
	failures := 0 // transient failures; backpressure never increments
	for i := 0; ; i++ {
		err := c.doOnce(ctx, method, path, in, out)
		if err == nil {
			return nil
		}
		retry, backpressure := retryClass(err)
		switch {
		case backpressure:
			// 429 is retried even on plain mutations: the server refused
			// before any state change.
		case !retry || !idempotent:
			return err
		default:
			failures++
			if failures >= c.retry.MaxAttempts {
				return err
			}
		}
		if c.retry.OnRetry != nil {
			c.retry.OnRetry(err)
		}
		if serr := backoff(ctx, c.retry, i, err); serr != nil {
			return serr
		}
	}
}
