package client_test

import (
	"bufio"
	"bytes"
	"context"
	"errors"
	"io"
	"net/http/httptest"
	"strings"
	"testing"

	"desyncpfair/internal/client"
	"desyncpfair/internal/model"
	"desyncpfair/internal/obs"
	"desyncpfair/internal/server"
)

func TestTraceDecoderValidStream(t *testing.T) {
	in := `{"seq":0,"t":10,"stage":"submit","cmd":1,"op":"job-submit","tenant":"a"}
{"seq":1,"t":20,"stage":"wal-append","cmd":1,"durNs":10}

{"seq":2,"t":30,"stage":"apply","cmd":1,"durNs":20}
`
	d := client.NewTraceDecoder(strings.NewReader(in))
	var got []obs.Event
	for {
		ev, err := d.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, ev)
	}
	if len(got) != 3 {
		t.Fatalf("decoded %d events, want 3", len(got))
	}
	if got[0].Stage != obs.StageSubmit || got[0].Cmd != 1 || got[0].Tenant != "a" {
		t.Errorf("event 0: %+v", got[0])
	}
	if got[2].Stage != obs.StageApply || got[2].DurNs != 20 {
		t.Errorf("event 2: %+v", got[2])
	}
}

// TestTraceDecoderRecovers: a malformed line errors without poisoning the
// decoder — the valid lines on either side still decode.
func TestTraceDecoderRecovers(t *testing.T) {
	in := `{"seq":0,"stage":"submit"}
{not json at all
{"seq":1,"stage":"apply"}`
	d := client.NewTraceDecoder(strings.NewReader(in))
	if ev, err := d.Next(); err != nil || ev.Seq != 0 {
		t.Fatalf("first event: %+v, %v", ev, err)
	}
	if _, err := d.Next(); err == nil {
		t.Fatal("malformed line decoded without error")
	}
	if ev, err := d.Next(); err != nil || ev.Seq != 1 || ev.Stage != obs.StageApply {
		t.Fatalf("event after malformed line: %+v, %v", ev, err)
	}
	if _, err := d.Next(); err != io.EOF {
		t.Fatalf("want io.EOF at end, got %v", err)
	}
}

func TestTraceDecoderTruncatedTail(t *testing.T) {
	// A crash mid-write leaves a torn final line: it errors, then EOF.
	in := "{\"seq\":0,\"stage\":\"submit\"}\n{\"seq\":1,\"sta"
	d := client.NewTraceDecoder(strings.NewReader(in))
	if ev, err := d.Next(); err != nil || ev.Seq != 0 {
		t.Fatalf("first event: %+v, %v", ev, err)
	}
	if _, err := d.Next(); err == nil || err == io.EOF {
		t.Fatalf("torn tail: want decode error, got %v", err)
	}
	if _, err := d.Next(); err != io.EOF {
		t.Fatalf("after torn tail: want io.EOF, got %v", err)
	}
}

func TestTraceDecoderOversizedLine(t *testing.T) {
	in := "{\"pad\":\"" + strings.Repeat("x", 2<<20) + "\"}\n"
	d := client.NewTraceDecoder(strings.NewReader(in))
	if _, err := d.Next(); !errors.Is(err, bufio.ErrTooLong) {
		t.Fatalf("oversized line: want bufio.ErrTooLong, got %v", err)
	}
}

// FuzzTraceDecoder: no byte stream panics the decoder, a decoder always
// terminates (every Next consumes input or errors), and a valid line
// prefixed to arbitrary bytes always decodes first, intact.
func FuzzTraceDecoder(f *testing.F) {
	f.Add([]byte(`{"seq":7,"t":1,"stage":"submit"}` + "\n"))
	f.Add([]byte("{\"seq\":0,\"stage\":\"apply\"}\n{\"seq\":1,\"sta"))
	f.Add([]byte("\n\n\n"))
	f.Add([]byte("{}"))
	f.Add([]byte(`{"seq":true}`))
	f.Add([]byte{0xff, 0xfe, 0x00})
	f.Fuzz(func(t *testing.T, data []byte) {
		d := client.NewTraceDecoder(bytes.NewReader(data))
		for {
			// Decode errors are fine; only hangs and panics are bugs. The
			// loop ends because every Next consumes at least one line.
			_, err := d.Next()
			if err == io.EOF || errors.Is(err, bufio.ErrTooLong) {
				break
			}
		}

		valid := `{"seq":42,"t":9,"stage":"dispatch","cmd":3,"task":"web","dseq":5,"lag":"1/2"}` + "\n"
		d = client.NewTraceDecoder(io.MultiReader(strings.NewReader(valid), bytes.NewReader(data)))
		ev, err := d.Next()
		if err != nil {
			t.Fatalf("valid prefix failed to decode: %v", err)
		}
		if ev.Seq != 42 || ev.Stage != obs.StageDispatch || ev.Task != "web" || ev.Lag != "1/2" {
			t.Fatalf("valid prefix decoded wrong: %+v", ev)
		}
	})
}

// TestStreamTraceEndToEnd drives the decoder over the real wire: client →
// HTTP → server trace ring → NDJSON → decoder.
func TestStreamTraceEndToEnd(t *testing.T) {
	srv := server.New()
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(hs.Close)
	t.Cleanup(srv.Shutdown)
	c := client.New(hs.URL, hs.Client())
	ctx := context.Background()

	if _, err := c.CreateTenant(ctx, "acme", 1, ""); err != nil {
		t.Fatal(err)
	}
	if _, err := c.RegisterTask(ctx, "acme", "web", model.W(1, 2)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.SubmitJob(ctx, "acme", "web", ""); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Advance(ctx, "acme", "2"); err != nil {
		t.Fatal(err)
	}

	st, err := c.StreamTrace(ctx, "acme", 0, false)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	var stages []string
	for {
		ev, err := st.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		stages = append(stages, ev.Stage)
	}
	// In-memory server: no wal-append stages; register + submit + advance
	// give submit/apply pairs plus one dispatch inside the advance.
	want := []string{
		obs.StageSubmit, obs.StageApply,
		obs.StageSubmit, obs.StageApply,
		obs.StageSubmit, obs.StageDispatch, obs.StageApply,
	}
	if strings.Join(stages, ",") != strings.Join(want, ",") {
		t.Fatalf("stages over the wire: %v, want %v", stages, want)
	}

	if _, err := c.StreamTrace(ctx, "ghost", 0, false); err == nil {
		t.Fatal("trace stream for unknown tenant succeeded")
	}
}
