package client_test

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"desyncpfair/internal/client"
	"desyncpfair/internal/model"
	"desyncpfair/internal/server"
)

// throttleHandler answers the first `rejects` requests with 429 (the
// submit-ring backpressure reply) and delegates afterwards.
type throttleHandler struct {
	rejects int64
	seen    atomic.Int64
	next    http.Handler
}

func (h *throttleHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if h.seen.Add(1) <= h.rejects {
		w.Header().Set("Retry-After", "0")
		http.Error(w, `{"error":"submit ring full"}`, http.StatusTooManyRequests)
		return
	}
	h.next.ServeHTTP(w, r)
}

// TestBackpressure429RetriedOnMutations pins the backpressure class: a
// 429 refuses the request *before* any state change, so even a plain
// (unkeyed) mutation is resent instead of surfacing the error — the fix
// for pfairload hot-looping on ring-full replies.
func TestBackpressure429RetriedOnMutations(t *testing.T) {
	srv := server.New()
	defer srv.Shutdown()
	th := &throttleHandler{rejects: 2, next: srv.Handler()}
	hs := httptest.NewServer(th)
	defer hs.Close()

	var retries atomic.Int64
	c := client.New(hs.URL, hs.Client()).WithRetry(client.RetryPolicy{
		MaxAttempts: 2, // two 429s would exhaust this if they counted
		BaseDelay:   time.Millisecond,
		OnRetry:     func(error) { retries.Add(1) },
	})
	if _, err := c.CreateTenant(context.Background(), "t", 1, ""); err != nil {
		t.Fatalf("POST through 2 429s: %v", err)
	}
	if n := th.seen.Load(); n != 3 {
		t.Fatalf("server saw %d requests, want 2 rejects + 1 success", n)
	}
	if n := retries.Load(); n != 2 {
		t.Fatalf("OnRetry fired %d times, want once per 429", n)
	}
}

// ackDropHandler lets the request reach the backend but replaces the
// first `drops` replies with 503 — the ambiguous "applied but unacked"
// failure a retried submit must tolerate.
type ackDropHandler struct {
	drops atomic.Int64
	next  http.Handler
}

func (h *ackDropHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method == http.MethodPost && h.drops.Add(-1) >= 0 {
		h.next.ServeHTTP(httptest.NewRecorder(), r) // applied; ack lost
		http.Error(w, "ack lost", http.StatusServiceUnavailable)
		return
	}
	h.next.ServeHTTP(w, r)
}

// TestKeyedSubmitResendIsDeduped pins the idempotency-key contract end
// to end: the first submit is applied but its ack is lost; the retried
// resend must return the original response instead of double-applying.
func TestKeyedSubmitResendIsDeduped(t *testing.T) {
	srv := server.New()
	defer srv.Shutdown()
	h := &ackDropHandler{next: srv.Handler()}
	hs := httptest.NewServer(h)
	defer hs.Close()

	c := client.New(hs.URL, hs.Client()).WithRetry(client.RetryPolicy{
		MaxAttempts: 3,
		BaseDelay:   time.Millisecond,
	})
	ctx := context.Background()
	if _, err := c.CreateTenant(ctx, "t", 1, ""); err != nil {
		t.Fatalf("CreateTenant: %v", err)
	}
	if _, err := c.RegisterTask(ctx, "t", "x", model.Weight{E: 1, P: 2}); err != nil {
		t.Fatalf("RegisterTask: %v", err)
	}

	h.drops.Store(1)
	resp, err := c.SubmitJobKeyed(ctx, "t", server.SubmitJobRequest{Task: "x", Key: "job-1"})
	if err != nil {
		t.Fatalf("keyed submit through a dropped ack: %v", err)
	}
	if resp.Pending != 1 {
		t.Fatalf("resp.Pending = %d, want 1 (the deduped original)", resp.Pending)
	}
	info, err := c.Tenant(ctx, "t")
	if err != nil {
		t.Fatalf("Tenant: %v", err)
	}
	if info.Pending != 1 {
		t.Fatalf("tenant has %d pending subtasks after a resent keyed submit, want 1 (no double-apply)", info.Pending)
	}
}

// TestUnkeyedSubmitNotRetriedOnAmbiguousFailure pins the other side of
// the contract: without a key the resend could double-apply, so the 503
// must surface.
func TestUnkeyedSubmitNotRetriedOnAmbiguousFailure(t *testing.T) {
	srv := server.New()
	defer srv.Shutdown()
	h := &ackDropHandler{next: srv.Handler()}
	hs := httptest.NewServer(h)
	defer hs.Close()

	c := client.New(hs.URL, hs.Client()).WithRetry(client.RetryPolicy{
		MaxAttempts: 3,
		BaseDelay:   time.Millisecond,
	})
	ctx := context.Background()
	if _, err := c.CreateTenant(ctx, "t", 1, ""); err != nil {
		t.Fatalf("CreateTenant: %v", err)
	}
	if _, err := c.RegisterTask(ctx, "t", "x", model.Weight{E: 1, P: 2}); err != nil {
		t.Fatalf("RegisterTask: %v", err)
	}

	h.drops.Store(1)
	if _, err := c.SubmitJob(ctx, "t", "x", ""); err == nil {
		t.Fatal("unkeyed submit was retried through an ambiguous failure")
	}
	info, err := c.Tenant(ctx, "t")
	if err != nil {
		t.Fatalf("Tenant: %v", err)
	}
	if info.Pending != 1 {
		t.Fatalf("tenant has %d pending subtasks, want 1 (applied once, ack lost)", info.Pending)
	}
}
