// Package client is the Go client for the pfaird scheduling service
// (internal/server): typed wrappers over the JSON API plus a streaming
// decoder for the newline-delimited dispatch feed. cmd/pfairload builds
// its load generator on this package, and tests use it to drive in-process
// httptest servers, so the wire protocol is exercised end to end.
//
// A Client is safe for concurrent use; each method is one HTTP request.
package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"desyncpfair/internal/model"
	"desyncpfair/internal/server"
)

// Client talks to one pfaird server. WithRetry derives a view that
// retries idempotent GETs with capped exponential backoff.
type Client struct {
	base  string
	hc    *http.Client
	retry RetryPolicy
}

// New creates a client for the server at base (e.g. "http://localhost:8080").
// A nil hc uses http.DefaultClient.
func New(base string, hc *http.Client) *Client {
	if hc == nil {
		hc = http.DefaultClient
	}
	for len(base) > 0 && base[len(base)-1] == '/' {
		base = base[:len(base)-1]
	}
	return &Client{base: base, hc: hc}
}

// APIError is a non-2xx reply, carrying the HTTP status and the server's
// error (or admission-rejection) message. RetryAfter is the reply's
// Retry-After header (zero when absent); the retry loop sleeps at least
// that long before resending.
type APIError struct {
	Status     int
	Msg        string
	RetryAfter time.Duration
}

func (e *APIError) Error() string {
	return fmt.Sprintf("pfaird: HTTP %d: %s", e.Status, e.Msg)
}

// IsReject reports whether err is an admission rejection (HTTP 409 from
// task registration) rather than a malformed or failed request.
func IsReject(err error) bool {
	ae, ok := err.(*APIError)
	return ok && ae.Status == http.StatusConflict
}

func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	return c.doRetry(ctx, method, path, in, out, false)
}

// doOnce is a single request attempt; the request body is rebuilt from
// `in` on every call so retries never resend a drained reader.
func (c *Client) doOnce(ctx context.Context, method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		buf, err := json.Marshal(in)
		if err != nil {
			return err
		}
		body = bytes.NewReader(buf)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		return apiError(resp)
	}
	if out == nil {
		io.Copy(io.Discard, resp.Body)
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

func apiError(resp *http.Response) error {
	var e server.ErrorResponse
	raw, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	if json.Unmarshal(raw, &e) != nil || e.Error == "" {
		// Admission rejections return a RegisterTaskResponse body.
		var rej server.RegisterTaskResponse
		if json.Unmarshal(raw, &rej) == nil && rej.Reason != "" {
			e.Error = rej.Reason
		} else {
			e.Error = string(bytes.TrimSpace(raw))
		}
	}
	ae := &APIError{Status: resp.StatusCode, Msg: e.Error}
	if v := resp.Header.Get("Retry-After"); v != "" {
		if secs, err := strconv.Atoi(v); err == nil && secs >= 0 {
			ae.RetryAfter = time.Duration(secs) * time.Second
		}
	}
	return ae
}

// Health checks /healthz.
func (c *Client) Health(ctx context.Context) error {
	return c.do(ctx, http.MethodGet, "/healthz", nil, nil)
}

// Metrics fetches the raw /metrics text exposition.
func (c *Client) Metrics(ctx context.Context) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/metrics", nil)
	if err != nil {
		return "", err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		return "", apiError(resp)
	}
	raw, err := io.ReadAll(resp.Body)
	return string(raw), err
}

// CreateTenant creates a tenant on m processors ("" policy = PD²).
func (c *Client) CreateTenant(ctx context.Context, id string, m int, policy string) (server.TenantInfo, error) {
	var info server.TenantInfo
	err := c.do(ctx, http.MethodPost, "/v1/tenants",
		server.CreateTenantRequest{ID: id, M: m, Policy: policy}, &info)
	return info, err
}

// DeleteTenant removes a tenant, ending its dispatch streams.
func (c *Client) DeleteTenant(ctx context.Context, id string) error {
	return c.do(ctx, http.MethodDelete, "/v1/tenants/"+id, nil, nil)
}

// Tenants lists all tenants.
func (c *Client) Tenants(ctx context.Context) ([]server.TenantInfo, error) {
	var infos []server.TenantInfo
	err := c.do(ctx, http.MethodGet, "/v1/tenants", nil, &infos)
	return infos, err
}

// Tenant fetches one tenant snapshot.
func (c *Client) Tenant(ctx context.Context, id string) (server.TenantInfo, error) {
	var info server.TenantInfo
	err := c.do(ctx, http.MethodGet, "/v1/tenants/"+id, nil, &info)
	return info, err
}

// RegisterTask admits a task of weight E/P. A capacity rejection comes
// back as an *APIError with IsReject(err) == true.
func (c *Client) RegisterTask(ctx context.Context, tenant, name string, w model.Weight) (server.RegisterTaskResponse, error) {
	var resp server.RegisterTaskResponse
	err := c.do(ctx, http.MethodPost, "/v1/tenants/"+tenant+"/tasks",
		server.RegisterTaskRequest{Name: name, E: w.E, P: w.P}, &resp)
	return resp, err
}

// UnregisterTask removes a task, releasing its capacity.
func (c *Client) UnregisterTask(ctx context.Context, tenant, name string) error {
	return c.do(ctx, http.MethodDelete, "/v1/tenants/"+tenant+"/tasks/"+name, nil, nil)
}

// SubmitJob releases one job of the task. An empty `at` submits at the
// tenant's current virtual time.
func (c *Client) SubmitJob(ctx context.Context, tenant, task, at string) (server.SubmitJobResponse, error) {
	var resp server.SubmitJobResponse
	err := c.do(ctx, http.MethodPost, "/v1/tenants/"+tenant+"/jobs",
		server.SubmitJobRequest{Task: task, At: at}, &resp)
	return resp, err
}

// SubmitJobs releases a batch of jobs in one request through
// POST /v1/tenants/{id}/jobs:batch. The batch is atomic: either every job
// is accepted (one durability ack covers them all) or none is.
func (c *Client) SubmitJobs(ctx context.Context, tenant string, jobs []server.SubmitJobRequest) (server.SubmitJobsResponse, error) {
	var resp server.SubmitJobsResponse
	err := c.do(ctx, http.MethodPost, "/v1/tenants/"+tenant+"/jobs:batch",
		server.SubmitJobsRequest{Jobs: jobs}, &resp)
	return resp, err
}

// SubmitJobKeyed releases one job with a client-supplied idempotency key
// (req.Key). Under a retry policy the POST retries on transport errors
// and 5xx like a GET would: the server remembers the key, so a resend of
// an already-applied submit returns the original response instead of
// double-applying — which makes this the submit to use across failovers.
func (c *Client) SubmitJobKeyed(ctx context.Context, tenant string, req server.SubmitJobRequest) (server.SubmitJobResponse, error) {
	var resp server.SubmitJobResponse
	err := c.doRetry(ctx, http.MethodPost, "/v1/tenants/"+tenant+"/jobs", req, &resp, req.Key != "")
	return resp, err
}

// SubmitJobEarly is SubmitJob with early releasing by up to `earliness`
// slots.
func (c *Client) SubmitJobEarly(ctx context.Context, tenant, task, at string, earliness int64) (server.SubmitJobResponse, error) {
	var resp server.SubmitJobResponse
	err := c.do(ctx, http.MethodPost, "/v1/tenants/"+tenant+"/jobs",
		server.SubmitJobRequest{Task: task, At: at, Earliness: earliness}, &resp)
	return resp, err
}

// Advance moves the tenant's virtual time to the absolute time `until`.
func (c *Client) Advance(ctx context.Context, tenant, until string) (server.AdvanceResponse, error) {
	var resp server.AdvanceResponse
	err := c.do(ctx, http.MethodPost, "/v1/tenants/"+tenant+"/advance",
		server.AdvanceRequest{Until: until}, &resp)
	return resp, err
}

// AdvanceBy moves the tenant's virtual time forward by `by` (race-free
// under concurrent clients).
func (c *Client) AdvanceBy(ctx context.Context, tenant, by string) (server.AdvanceResponse, error) {
	var resp server.AdvanceResponse
	err := c.do(ctx, http.MethodPost, "/v1/tenants/"+tenant+"/advance",
		server.AdvanceRequest{By: by}, &resp)
	return resp, err
}

// Drain dispatches everything the tenant has released so far.
func (c *Client) Drain(ctx context.Context, tenant string) (server.AdvanceResponse, error) {
	var resp server.AdvanceResponse
	err := c.do(ctx, http.MethodPost, "/v1/tenants/"+tenant+"/drain", nil, &resp)
	return resp, err
}

// Resize changes the tenant's processor count. A shrink below current
// utilization fails with a 409 APIError (IsReject) unless drain is set,
// in which case it is queued and the response reports Outcome "queued"
// with the pending target.
func (c *Client) Resize(ctx context.Context, tenant string, m int, drain bool) (server.ResizeResponse, error) {
	var resp server.ResizeResponse
	err := c.do(ctx, http.MethodPost, "/v1/tenants/"+tenant+"/resize",
		server.ResizeRequest{M: m, Drain: drain}, &resp)
	return resp, err
}

// Stream is an open dispatch feed. Next blocks for the next decision;
// it returns io.EOF when the stream ends (tenant deleted, ?follow=false
// backlog exhausted, or server shutdown). Close aborts early.
type Stream struct {
	body io.ReadCloser
	sc   *bufio.Scanner
}

// StreamDispatches opens GET /v1/tenants/{id}/dispatches. `from` is the
// first decision index to receive; follow=false stops after the current
// backlog instead of following live decisions. Cancel ctx or call Close
// to abandon the stream.
func (c *Client) StreamDispatches(ctx context.Context, tenant string, from int64, follow bool) (*Stream, error) {
	url := fmt.Sprintf("%s/v1/tenants/%s/dispatches?from=%d&follow=%v", c.base, tenant, from, follow)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		defer resp.Body.Close()
		return nil, apiError(resp)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	return &Stream{body: resp.Body, sc: sc}, nil
}

// StreamGoneError is returned by Stream.Next when the server evicted the
// stream for lagging past its backlog bound (an in-band 410 control
// line). ResumeFrom is the decision index to reconnect with: call
// StreamDispatches again with from=ResumeFrom to pick up where the
// eviction cut in.
type StreamGoneError struct {
	Message    string
	ResumeFrom int64
}

func (e *StreamGoneError) Error() string { return e.Message }

// Next returns the next dispatch decision, or io.EOF at end of stream.
// A *StreamGoneError means the server evicted this stream for lagging;
// reconnect with from=ResumeFrom.
func (s *Stream) Next() (server.DispatchEvent, error) {
	var ev server.DispatchEvent
	for s.sc.Scan() {
		line := bytes.TrimSpace(s.sc.Bytes())
		if len(line) == 0 {
			continue
		}
		// Dispatch events never carry an "error" key, so a line that
		// decodes with one set is an in-band control line, not an event.
		if bytes.Contains(line, []byte(`"error"`)) {
			var gone server.StreamGone
			if json.Unmarshal(line, &gone) == nil && gone.Error != "" {
				return ev, &StreamGoneError{Message: gone.Error, ResumeFrom: gone.ResumeFrom}
			}
		}
		err := json.Unmarshal(line, &ev)
		return ev, err
	}
	if err := s.sc.Err(); err != nil {
		return ev, err
	}
	return ev, io.EOF
}

// Close releases the stream's connection.
func (s *Stream) Close() error { return s.body.Close() }
