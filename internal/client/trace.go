package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"

	"desyncpfair/internal/obs"
)

// TraceDecoder decodes a newline-delimited stream of obs.Event values, as
// served by GET /v1/tenants/{id}/trace. It is deliberately forgiving about
// the byte stream and strict about each line: blank lines are skipped, a
// malformed or truncated line yields an error from Next without poisoning
// the decoder (the following lines still decode), and no input — garbage,
// interleaved fragments, oversized lines — can make it panic. The
// FuzzTraceDecoder target pins those properties.
type TraceDecoder struct {
	sc *bufio.Scanner
}

// NewTraceDecoder wraps r, typically a trace response body or a saved
// trace file. Lines above 1 MiB fail with bufio.ErrTooLong rather than
// growing without bound.
func NewTraceDecoder(r io.Reader) *TraceDecoder {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	return &TraceDecoder{sc: sc}
}

// Next returns the next trace event. It returns io.EOF at end of input, a
// decode error for a malformed line (call Next again to continue past it),
// or the reader's error.
func (d *TraceDecoder) Next() (obs.Event, error) {
	var ev obs.Event
	for d.sc.Scan() {
		line := bytes.TrimSpace(d.sc.Bytes())
		if len(line) == 0 {
			continue
		}
		if err := json.Unmarshal(line, &ev); err != nil {
			return obs.Event{}, fmt.Errorf("client: bad trace line: %w", err)
		}
		return ev, nil
	}
	if err := d.sc.Err(); err != nil {
		return ev, err
	}
	return ev, io.EOF
}

// TraceStream is an open command-lifecycle trace feed; it pairs a live
// response body with a TraceDecoder. Next blocks for the next event and
// returns io.EOF when the stream ends (tenant deleted, ?follow=false
// backlog exhausted, or server shutdown). Close aborts early.
type TraceStream struct {
	body io.ReadCloser
	dec  *TraceDecoder
}

// StreamTrace opens GET /v1/tenants/{id}/trace. `from` is the first event
// sequence number to receive — events already evicted from the server's
// bounded ring are skipped, and the Seq gap on the first event shows how
// many. follow=false stops after the retained backlog instead of
// following live commands. Cancel ctx or call Close to abandon the stream.
func (c *Client) StreamTrace(ctx context.Context, tenant string, from int64, follow bool) (*TraceStream, error) {
	url := fmt.Sprintf("%s/v1/tenants/%s/trace?from=%d&follow=%v", c.base, tenant, from, follow)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		defer resp.Body.Close()
		return nil, apiError(resp)
	}
	return &TraceStream{body: resp.Body, dec: NewTraceDecoder(resp.Body)}, nil
}

// Next returns the next trace event, or io.EOF at end of stream.
func (s *TraceStream) Next() (obs.Event, error) { return s.dec.Next() }

// Close releases the stream's connection.
func (s *TraceStream) Close() error { return s.body.Close() }
