package client_test

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"desyncpfair/internal/client"
	"desyncpfair/internal/server"
)

// flakyHandler fails the first `failures` requests with 503 and serves the
// real server afterwards — the classic restart window a retrying client
// must ride out.
type flakyHandler struct {
	failures int64
	seen     atomic.Int64
	next     http.Handler
}

func (f *flakyHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if f.seen.Add(1) <= f.failures {
		http.Error(w, "restarting", http.StatusServiceUnavailable)
		return
	}
	f.next.ServeHTTP(w, r)
}

func TestRetryRidesOut503s(t *testing.T) {
	srv := server.New()
	defer srv.Shutdown()
	fh := &flakyHandler{failures: 3, next: srv.Handler()}
	hs := httptest.NewServer(fh)
	defer hs.Close()

	c := client.New(hs.URL, hs.Client()).WithRetry(client.RetryPolicy{
		MaxAttempts: 5,
		BaseDelay:   time.Millisecond,
		MaxDelay:    4 * time.Millisecond,
	})
	if _, err := c.Tenants(context.Background()); err != nil {
		t.Fatalf("GET through 3 failures: %v", err)
	}
	if n := fh.seen.Load(); n != 4 {
		t.Fatalf("server saw %d requests, want 3 failures + 1 success", n)
	}
}

func TestMutationsAreNeverRetried(t *testing.T) {
	srv := server.New()
	defer srv.Shutdown()
	fh := &flakyHandler{failures: 1, next: srv.Handler()}
	hs := httptest.NewServer(fh)
	defer hs.Close()

	c := client.New(hs.URL, hs.Client()).WithRetry(client.RetryPolicy{
		MaxAttempts: 5,
		BaseDelay:   time.Millisecond,
	})
	// One 503 in the way: the POST must surface it instead of resending —
	// a replayed mutation could double-apply a journaled command.
	_, err := c.CreateTenant(context.Background(), "t", 1, "")
	var ae *client.APIError
	if !errors.As(err, &ae) || ae.Status != http.StatusServiceUnavailable {
		t.Fatalf("flaky POST returned %v, want the 503 passed through", err)
	}
	if n := fh.seen.Load(); n != 1 {
		t.Fatalf("server saw %d requests for one POST, want exactly 1", n)
	}
}

func TestRetryGivesUpAfterMaxAttempts(t *testing.T) {
	var seen atomic.Int64
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		seen.Add(1)
		http.Error(w, "down", http.StatusServiceUnavailable)
	}))
	defer hs.Close()

	c := client.New(hs.URL, hs.Client()).WithRetry(client.RetryPolicy{
		MaxAttempts: 3,
		BaseDelay:   time.Millisecond,
	})
	_, err := c.Tenants(context.Background())
	var ae *client.APIError
	if !errors.As(err, &ae) || ae.Status != http.StatusServiceUnavailable {
		t.Fatalf("err = %v, want the final 503", err)
	}
	if n := seen.Load(); n != 3 {
		t.Fatalf("server saw %d attempts, want MaxAttempts = 3", n)
	}
}

func TestRetryHonorsContextDeadline(t *testing.T) {
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "down", http.StatusServiceUnavailable)
	}))
	defer hs.Close()

	c := client.New(hs.URL, hs.Client()).WithRetry(client.RetryPolicy{
		MaxAttempts: 1000,
		BaseDelay:   50 * time.Millisecond,
		MaxDelay:    50 * time.Millisecond,
	})
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := c.Tenants(ctx)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded from mid-backoff", err)
	}
	if el := time.Since(start); el > 2*time.Second {
		t.Fatalf("gave up after %v; the deadline should abort the backoff sleep", el)
	}
}

// dropTransport fails the first `failures` round trips at the transport
// layer (connection refused, reset, …) and then delegates.
type dropTransport struct {
	failures int64
	seen     atomic.Int64
	next     http.RoundTripper
}

func (d *dropTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	if d.seen.Add(1) <= d.failures {
		return nil, fmt.Errorf("injected: connection reset")
	}
	return d.next.RoundTrip(req)
}

func TestRetryRidesOutTransportErrors(t *testing.T) {
	srv := server.New()
	defer srv.Shutdown()
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()

	dt := &dropTransport{failures: 2, next: hs.Client().Transport}
	hc := &http.Client{Transport: dt}
	c := client.New(hs.URL, hc).WithRetry(client.RetryPolicy{
		MaxAttempts: 4,
		BaseDelay:   time.Millisecond,
	})
	if err := c.Health(context.Background()); err != nil {
		t.Fatalf("GET through 2 transport failures: %v", err)
	}
	if n := dt.seen.Load(); n != 3 {
		t.Fatalf("transport saw %d attempts, want 2 failures + 1 success", n)
	}
}
