package client_test

import (
	"context"
	"net/http/httptest"
	"strings"
	"testing"

	"desyncpfair/internal/client"
	"desyncpfair/internal/model"
	"desyncpfair/internal/server"
)

// TestSubmitJobsBatchRoundTrip pins the batch submit path end to end over
// the wire: an atomic accept, the per-job results, and all-or-nothing
// rejection when any job in the batch is invalid.
func TestSubmitJobsBatchRoundTrip(t *testing.T) {
	srv := server.New()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Shutdown()
	c := client.New(ts.URL, nil)
	ctx := context.Background()

	if _, err := c.CreateTenant(ctx, "acme", 2, ""); err != nil {
		t.Fatal(err)
	}
	if _, err := c.RegisterTask(ctx, "acme", "web", model.W(1, 2)); err != nil {
		t.Fatal(err)
	}

	resp, err := c.SubmitJobs(ctx, "acme", []server.SubmitJobRequest{
		{Task: "web"}, {Task: "web"}, {Task: "web"},
	})
	if err != nil {
		t.Fatalf("SubmitJobs: %v", err)
	}
	if resp.Accepted != 3 || len(resp.Results) != 3 {
		t.Fatalf("accepted %d results %d, want 3/3", resp.Accepted, len(resp.Results))
	}
	// Each job releases E=1 subtask; the last result sees all three pending.
	if got := resp.Results[2].Pending; got != 3 {
		t.Fatalf("pending after batch = %d, want 3", got)
	}

	// One invalid job rejects the whole batch and leaves no state behind.
	before, err := c.Tenant(ctx, "acme")
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.SubmitJobs(ctx, "acme", []server.SubmitJobRequest{
		{Task: "web"}, {Task: "nope"},
	})
	if err == nil {
		t.Fatal("batch with unknown task accepted")
	}
	if !strings.Contains(err.Error(), "job 1") {
		t.Fatalf("error %q does not name the offending job", err)
	}
	after, err := c.Tenant(ctx, "acme")
	if err != nil {
		t.Fatal(err)
	}
	if before.Pending != after.Pending {
		t.Fatalf("rejected batch changed pending: %d → %d", before.Pending, after.Pending)
	}

	// An empty batch is a client error, not a no-op 2xx.
	if _, err := c.SubmitJobs(ctx, "acme", nil); err == nil {
		t.Fatal("empty batch accepted")
	}
}
