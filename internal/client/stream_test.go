package client

import (
	"bufio"
	"errors"
	"io"
	"strings"
	"testing"

	"desyncpfair/internal/server"
)

// newFakeStream builds a Stream over canned NDJSON, bypassing HTTP.
func newFakeStream(body string) *Stream {
	rc := io.NopCloser(strings.NewReader(body))
	sc := bufio.NewScanner(rc)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	return &Stream{body: rc, sc: sc}
}

// TestStreamNextGoneControlLine: events decode normally, the in-band 410
// control line surfaces as *StreamGoneError with the resume hint, and a
// quoted "error" inside an event's data does not false-positive (the
// probe requires a successful decode with a non-empty Error).
func TestStreamNextGoneControlLine(t *testing.T) {
	s := newFakeStream(
		`{"seq":0,"at":"0","task":"web","e":1}` + "\n" +
			`{"seq":1,"at":"1","task":"say \"error\" aloud","e":1}` + "\n" +
			`{"error":"stream evicted: lagging past the server's bound; reconnect with ?from=2","status":410,"resumeFrom":2}` + "\n",
	)
	ev, err := s.Next()
	if err != nil || ev.Seq != 0 {
		t.Fatalf("first event: %+v, %v", ev, err)
	}
	ev, err = s.Next()
	if err != nil || ev.Seq != 1 {
		t.Fatalf("second event (escaped quotes): %+v, %v", ev, err)
	}
	_, err = s.Next()
	var gone *StreamGoneError
	if !errors.As(err, &gone) {
		t.Fatalf("control line: err %v, want *StreamGoneError", err)
	}
	if gone.ResumeFrom != 2 {
		t.Fatalf("ResumeFrom %d, want 2", gone.ResumeFrom)
	}
	if !strings.Contains(gone.Error(), "?from=2") {
		t.Fatalf("eviction message lacks the restart hint: %q", gone.Error())
	}
}

// TestStreamGoneRoundTrip: the exact line the server's egress plane emits
// must decode to the error the client reports.
func TestStreamGoneRoundTrip(t *testing.T) {
	_ = server.StreamGone{} // the control-line schema is the server's wire type
	s := newFakeStream(`{"error":"gone","status":410,"resumeFrom":7}` + "\n")
	_, err := s.Next()
	var gone *StreamGoneError
	if !errors.As(err, &gone) || gone.ResumeFrom != 7 {
		t.Fatalf("err %v", err)
	}
}
