package pfair

import (
	"desyncpfair/internal/host"
)

// Host types: the closed loop between the online executive and real
// durations — registered Work functions execute each quantum and the time
// they report consuming becomes the subtask's actual cost.
type (
	// Host drives an online executive against a clock with Work callbacks.
	Host = host.Host
	// HostConfig configures a Host.
	HostConfig = host.Config
	// Work simulates or performs one quantum of work, returning the
	// duration actually used (clamped into (0, budget]).
	Work = host.Work
)

// NewHost creates a closed-loop host. A nil Clock selects the wall clock;
// use a FakeClock for deterministic simulation.
func NewHost(cfg HostConfig) (*Host, error) { return host.New(cfg) }
