package pfair_test

import (
	"strings"
	"testing"
	"time"

	pfair "desyncpfair"
)

// The README quick-start must work verbatim through the public API.
func TestQuickStart(t *testing.T) {
	sys := pfair.Periodic([]pfair.Weight{pfair.W(1, 2), pfair.W(3, 4)}, 12)
	s, err := pfair.RunDVQ(sys, pfair.DVQOptions{M: 2})
	if err != nil {
		t.Fatal(err)
	}
	if got := s.MaxTardiness(); pfair.IntRat(1).Less(got) {
		t.Errorf("tardiness %s > 1", got)
	}
	if err := s.ValidateDVQ(); err != nil {
		t.Fatal(err)
	}
}

func TestPoliciesExposed(t *testing.T) {
	for _, p := range []pfair.Policy{pfair.EPDF(), pfair.PF(), pfair.PD(), pfair.PD2()} {
		if p == nil || p.Name() == "" {
			t.Error("nil or unnamed policy")
		}
		if pfair.PolicyByName(p.Name()) == nil {
			t.Errorf("PolicyByName(%s) failed", p.Name())
		}
	}
}

func TestFullPipelineThroughFacade(t *testing.T) {
	sys := pfair.Periodic([]pfair.Weight{
		pfair.W(1, 6), pfair.W(1, 6), pfair.W(1, 6),
		pfair.W(1, 2), pfair.W(1, 2), pfair.W(1, 2),
	}, 6)
	y := pfair.AdversarialYield(pfair.NewRat(1, 4), func(s *pfair.Subtask) bool {
		return (s.Task.Name == "A" || s.Task.Name == "F") && s.Index == 1
	})
	dq, err := pfair.RunDVQ(sys, pfair.DVQOptions{M: 2, Yield: y})
	if err != nil {
		t.Fatal(err)
	}
	// Analysis.
	sum := pfair.Summarize(dq)
	if sum.Misses != 1 {
		t.Errorf("misses = %d, want 1", sum.Misses)
	}
	// Transform.
	tr := pfair.BuildSB(dq)
	if err := tr.CheckLemma3(); err != nil {
		t.Error(err)
	}
	// Blocking.
	if err := pfair.CheckPropertyPB(dq, pfair.PD2()); err != nil {
		t.Error(err)
	}
	if len(pfair.FindBlocking(dq, pfair.PD2())) == 0 {
		t.Error("expected blocking events")
	}
	// PD^B + compliance.
	pdb, err := pfair.RunPDB(sys, pfair.PDBOptions{M: 2})
	if err != nil {
		t.Fatal(err)
	}
	cr, err := pfair.RunCompliant(sys, pdb, sys.NumSubtasks())
	if err != nil {
		t.Fatal(err)
	}
	if err := cr.Schedule.ValidatePfair(); err != nil {
		t.Error(err)
	}
	// Rendering.
	if out := pfair.RenderTimeline(dq); !strings.Contains(out, "P0:") {
		t.Error("timeline render broken")
	}
	if out := pfair.RenderSlots(pdb.Schedule); !strings.Contains(out, "slot") {
		t.Error("slot render broken")
	}
	if out := pfair.RenderWindows(sys, sys.Tasks[0]); !strings.Contains(out, "A_1") {
		t.Error("window render broken")
	}
}

func TestBaselinesExposed(t *testing.T) {
	ws := []pfair.Weight{pfair.W(1, 2), pfair.W(1, 2), pfair.W(1, 2), pfair.W(1, 2)}
	if r := pfair.GlobalEDF(ws, 2, 8); r.Jobs == 0 {
		t.Error("GlobalEDF ran no jobs")
	}
	if _, err := pfair.PartitionedEDF(ws, 2, 8); err != nil {
		t.Errorf("PartitionedEDF: %v", err)
	}
	if r := pfair.DFS(ws, 2, 8, true); r.Subtasks == 0 {
		t.Error("DFS ran no subtasks")
	}
}

func TestYieldHelpersExposed(t *testing.T) {
	sys := pfair.Periodic([]pfair.Weight{pfair.W(1, 2)}, 4)
	sub := sys.All()[0]
	if !pfair.FullCost(sub).Equal(pfair.IntRat(1)) {
		t.Error("FullCost broken")
	}
	if !pfair.ConstCost(pfair.NewRat(1, 2))(sub).Equal(pfair.NewRat(1, 2)) {
		t.Error("ConstCost broken")
	}
	if c := pfair.UniformYield(1, 8)(sub); c.Sign() <= 0 {
		t.Error("UniformYield broken")
	}
	if c := pfair.BimodalYield(1, 50, 8)(sub); c.Sign() <= 0 {
		t.Error("BimodalYield broken")
	}
}

func TestPfairnessCheckExposed(t *testing.T) {
	sys := pfair.Periodic([]pfair.Weight{pfair.W(1, 2), pfair.W(1, 2)}, 8)
	s, err := pfair.RunSFQ(sys, pfair.SFQOptions{M: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := pfair.CheckPfairness(s); err != nil {
		t.Error(err)
	}
	if pfair.QuantumResidue(s).Sign() != 0 {
		t.Error("full-cost residue should be 0")
	}
}

func TestExecutiveThroughFacade(t *testing.T) {
	ex := pfair.NewExecutive(2, nil)
	task, err := ex.Register("web", pfair.W(1, 2))
	if err != nil {
		t.Fatal(err)
	}
	if err := ex.SubmitJob(task, pfair.IntRat(0)); err != nil {
		t.Fatal(err)
	}
	var dispatches []pfair.Dispatch
	if err := ex.Run(pfair.IntRat(4), nil, func(d pfair.Dispatch) {
		dispatches = append(dispatches, d)
	}); err != nil {
		t.Fatal(err)
	}
	if len(dispatches) != 1 {
		t.Fatalf("dispatches = %d", len(dispatches))
	}
	if got := ex.Schedule().MaxTardiness(); pfair.IntRat(1).Less(got) {
		t.Errorf("tardiness %s > 1", got)
	}
}

func TestRMBaselinesThroughFacade(t *testing.T) {
	ws := pfair.DhallWeights(2, 10)
	if r := pfair.GlobalRM(ws, 2, 10); r.Misses == 0 {
		t.Error("Dhall set should defeat global RM")
	}
	if got := pfair.LiuLaylandBound(1); got != 1 {
		t.Errorf("LL(1) = %f", got)
	}
	ok := []pfair.Weight{pfair.W(1, 4), pfair.W(1, 4)}
	if _, err := pfair.PartitionedRM(ok, 2, 8); err != nil {
		t.Errorf("PartitionedRM: %v", err)
	}
}

func TestAblationPoliciesThroughFacade(t *testing.T) {
	if pfair.PD2NoGroup().Name() != "PD2-noD" || pfair.PD2NoBBit().Name() != "PD2-nob" {
		t.Error("ablation policies misnamed")
	}
}

func TestParseRat(t *testing.T) {
	r, err := pfair.ParseRat("3/4")
	if err != nil || !r.Equal(pfair.NewRat(3, 4)) {
		t.Errorf("ParseRat: %v %s", err, r)
	}
	if _, err := pfair.ParseRat("x"); err == nil {
		t.Error("bad input accepted")
	}
}

func TestQuantizeThroughFacade(t *testing.T) {
	rts := []pfair.RealTask{{Name: "a", C: 2500, T: 10000}}
	ws, err := pfair.QuantizeWeights(rts, 1000, 0)
	if err != nil || ws[0] != pfair.W(3, 10) {
		t.Errorf("quantize: %v %v", ws, err)
	}
	pts := pfair.QuantumCurve(rts, 1, 0, []int64{500, 1000})
	if len(pts) != 2 || !pts[0].Feasible {
		t.Errorf("curve: %+v", pts)
	}
	if _, err := pfair.BestQuantum(rts, 1, 0, []int64{500, 1000}); err != nil {
		t.Error(err)
	}
}

func TestDriftThroughFacade(t *testing.T) {
	sys := pfair.Periodic([]pfair.Weight{pfair.W(1, 2), pfair.W(1, 2)}, 8)
	s, err := pfair.RunDriftedSFQ(sys, pfair.DriftOptions{
		M:       1,
		Epsilon: []pfair.Rat{pfair.NewRat(1, 100)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != sys.NumSubtasks() {
		t.Error("drifted run incomplete")
	}
}

func TestSystemJSONThroughFacade(t *testing.T) {
	sys := pfair.Periodic([]pfair.Weight{pfair.W(1, 2), pfair.W(3, 4)}, 8)
	var buf strings.Builder
	if err := pfair.SaveSystem(&buf, sys); err != nil {
		t.Fatal(err)
	}
	back, err := pfair.LoadSystem(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if back.NumSubtasks() != sys.NumSubtasks() {
		t.Errorf("round trip lost subtasks")
	}
	if _, err := pfair.LoadSystem(strings.NewReader("nope")); err == nil {
		t.Error("bad JSON accepted")
	}
}

func TestScheduleDiffThroughFacade(t *testing.T) {
	sys := pfair.Periodic([]pfair.Weight{pfair.W(1, 2)}, 4)
	a, err := pfair.RunSFQ(sys, pfair.SFQOptions{M: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := pfair.RunDVQ(sys, pfair.DVQOptions{M: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !pfair.SchedulesEqual(a, b) {
		t.Errorf("full-quanta SFQ and DVQ should agree: %v", pfair.DiffSchedules(a, b))
	}
	h := pfair.TardinessHistogram(a)
	if h.Total != sys.NumSubtasks() {
		t.Errorf("histogram total %d", h.Total)
	}
}

func TestHostThroughFacade(t *testing.T) {
	clk := &pfair.FakeClock{}
	h, err := pfair.NewHost(pfair.HostConfig{M: 1, Quantum: time.Millisecond, Clock: clk})
	if err != nil {
		t.Fatal(err)
	}
	task, err := h.Register("T", pfair.W(1, 2), func(budget time.Duration) time.Duration {
		return budget / 2
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Submit(task); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Drain(); err != nil {
		t.Fatal(err)
	}
	if h.Schedule().Len() != 1 {
		t.Error("work not dispatched")
	}
}

// Exercise every remaining facade wrapper on the Fig. 2 system.
func TestFacadeWrappersComplete(t *testing.T) {
	sys := pfair.Periodic([]pfair.Weight{
		pfair.W(1, 6), pfair.W(1, 6), pfair.W(1, 6),
		pfair.W(1, 2), pfair.W(1, 2), pfair.W(1, 2),
	}, 6)
	dq, err := pfair.RunDVQ(sys, pfair.DVQOptions{M: 2, Yield: pfair.UniformYield(3, 8)})
	if err != nil {
		t.Fatal(err)
	}
	if err := pfair.CheckWorkConserving(dq); err != nil {
		t.Error(err)
	}
	if m := pfair.Migrations(dq); m < 0 {
		t.Error("negative migrations")
	}
	var b strings.Builder
	if err := pfair.WriteScheduleCSV(&b, dq); err != nil {
		t.Error(err)
	}
	b.Reset()
	if err := pfair.WriteScheduleHTML(&b, dq, "t"); err != nil {
		t.Error(err)
	}
	b.Reset()
	if err := pfair.WriteLagCSV(&b, dq); err != nil {
		t.Error(err)
	}

	sfqS, err := pfair.RunSFQ(sys, pfair.SFQOptions{M: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := pfair.CheckISPfairness(sfqS); err != nil {
		t.Error(err)
	}
	if len(pfair.DiffSchedules(sfqS, sfqS)) != 0 {
		t.Error("self-diff non-empty")
	}

	pdb, err := pfair.RunPDB(sys, pfair.PDBOptions{M: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := pfair.CheckLemma2(pdb, pfair.PD2()); err != nil {
		t.Error(err)
	}
	if err := pfair.CheckClaim5(sys, pdb); err != nil {
		t.Error(err)
	}
	if err := pfair.CheckLemma6(sys, pdb); err != nil {
		t.Error(err)
	}
	if out := pfair.RenderPDBTrace(pdb); !strings.Contains(out, "EB={") {
		t.Error("PDB trace render broken")
	}

	if d := pfair.AdmitPfairDVQ([]pfair.Weight{pfair.W(1, 2)}, 1); !d.Admitted || d.Guarantee != pfair.SoftRealTime {
		t.Errorf("AdmitPfairDVQ: %+v", d)
	}
	if pfair.WallClock() == nil {
		t.Error("WallClock nil")
	}

	sp := pfair.NewSystem()
	if _, err := pfair.AddSporadic(sp, "S", pfair.W(1, 2), []int64{0, 3}); err != nil {
		t.Error(err)
	}
}

func TestJobsThroughFacade(t *testing.T) {
	sys := pfair.Periodic([]pfair.Weight{pfair.W(1, 2)}, 4)
	s, err := pfair.RunSFQ(sys, pfair.SFQOptions{M: 1})
	if err != nil {
		t.Fatal(err)
	}
	jobs := pfair.Jobs(s)
	if len(jobs) != 2 {
		t.Fatalf("jobs = %d", len(jobs))
	}
	if pfair.MaxJobTardiness(s).Sign() != 0 {
		t.Error("on-time schedule has job tardiness")
	}
}
