// Benchmarks: one per figure and experiment of DESIGN.md §3 (the paper has
// no measurement tables; these regenerate its figures and validate its
// theorems), plus engine micro-benchmarks. Run with:
//
//	go test -bench=. -benchmem
package pfair_test

import (
	"fmt"
	"math/rand"
	"testing"

	pfair "desyncpfair"
	"desyncpfair/internal/exp"
	"desyncpfair/internal/gen"
	"desyncpfair/internal/model"
	"desyncpfair/internal/prio"
	"desyncpfair/internal/rat"
)

// --- figures ---------------------------------------------------------------

func BenchmarkFig1Windows(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if out := exp.Fig1(); len(out) == 0 {
			b.Fatal("empty")
		}
	}
}

func BenchmarkFig2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.Fig2(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := exp.Fig3(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig4Transform(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.Fig4(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig6Compliance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.Fig6(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- experiments -------------------------------------------------------------

func BenchmarkE1Tightness(b *testing.B) {
	deltas := exp.DefaultDeltas()
	for i := 0; i < b.N; i++ {
		pts, err := exp.E1Tightness(deltas)
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range pts {
			if !p.MaxTardiness.Equal(rat.One.Sub(p.Delta)) {
				b.Fatalf("tightness broken at δ=%s", p.Delta)
			}
		}
	}
}

func BenchmarkE2DVQTardiness(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts, err := exp.E2DVQTardiness(int64(i), 3, []int{2, 4})
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range pts {
			if !p.BoundHolds {
				b.Fatal("Theorem 3 bound violated")
			}
		}
	}
}

func BenchmarkE3SFQOptimal(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts, err := exp.E3SFQOptimality(int64(i), 4)
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range pts {
			if p.Policy != "EPDF" && p.Misses != 0 {
				b.Fatalf("%s missed", p.Policy)
			}
		}
	}
}

func BenchmarkE4PDBTardiness(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts, err := exp.E4PDBTardiness(int64(i), 3, []int{2, 4})
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range pts {
			if !p.BoundHolds {
				b.Fatal("Theorem 2 bound violated")
			}
		}
	}
}

func BenchmarkE5Transform(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pt, err := exp.E5Transform(int64(i), 4)
		if err != nil {
			b.Fatal(err)
		}
		if !pt.AllLemmasHold {
			b.Fatal("lemmas violated")
		}
	}
}

func BenchmarkE6PropertyPB(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pt, err := exp.E6PropertyPB(int64(i), 4)
		if err != nil {
			b.Fatal(err)
		}
		if !pt.PropertyHolds {
			b.Fatal("Property PB violated")
		}
	}
}

func BenchmarkE7Reclamation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.E7Reclamation(int64(i), 2, 2); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE8EPDF(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts, err := exp.E8EPDF(int64(i), 3, []int{2, 4})
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range pts {
			if !p.DeltaAtMost1 {
				b.Fatal("EPDF gap > 1")
			}
		}
	}
}

func BenchmarkE9Staggered(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts, err := exp.E9Staggered(int64(i), 2, []int{2, 4})
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range pts {
			if p.StaggeredBurst != 1 {
				b.Fatal("stagger broken")
			}
		}
	}
}

func BenchmarkE10UtilBound(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts, err := exp.E10UtilizationBound(int64(i), 3, 4)
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range pts {
			if p.PfairMissTrials != 0 {
				b.Fatal("PD² missed")
			}
		}
	}
}

func BenchmarkE11Compliance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pt, err := exp.E11Compliance(int64(i), 2)
		if err != nil {
			b.Fatal(err)
		}
		if !pt.AllValid {
			b.Fatal("Lemma 6 violated")
		}
	}
}

func BenchmarkE12FracCost(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pt, err := exp.E12FractionalCosts(int64(i), 3)
		if err != nil {
			b.Fatal(err)
		}
		if !pt.BoundHolds {
			b.Fatal("fractional bound violated")
		}
	}
}

// --- engine micro-benchmarks -------------------------------------------------

// benchSystem builds a deterministic full-utilization system with n tasks
// on m processors over the given horizon.
func benchSystem(m, n int, horizon int64) *pfair.System {
	rng := rand.New(rand.NewSource(99))
	q := int64(12)
	ws := gen.GridWeights(rng, n, q, int64(m)*q, gen.MixedWeights)
	return model.Periodic(ws, horizon)
}

func BenchmarkSFQEngine(b *testing.B) {
	for _, cfg := range []struct{ m, n int }{{2, 6}, {4, 12}, {8, 24}, {16, 48}} {
		sys := benchSystem(cfg.m, cfg.n, 120)
		b.Run(fmt.Sprintf("M%d_N%d", cfg.m, cfg.n), func(b *testing.B) {
			b.ReportMetric(float64(sys.NumSubtasks()), "subtasks")
			for i := 0; i < b.N; i++ {
				s, err := pfair.RunSFQ(sys, pfair.SFQOptions{M: cfg.m})
				if err != nil {
					b.Fatal(err)
				}
				if s.MissCount() != 0 {
					b.Fatal("PD² missed")
				}
			}
		})
	}
}

func BenchmarkDVQEngine(b *testing.B) {
	for _, cfg := range []struct{ m, n int }{{2, 6}, {4, 12}, {8, 24}, {16, 48}} {
		sys := benchSystem(cfg.m, cfg.n, 120)
		y := pfair.UniformYield(5, 8)
		b.Run(fmt.Sprintf("M%d_N%d", cfg.m, cfg.n), func(b *testing.B) {
			b.ReportMetric(float64(sys.NumSubtasks()), "subtasks")
			for i := 0; i < b.N; i++ {
				s, err := pfair.RunDVQ(sys, pfair.DVQOptions{M: cfg.m, Yield: y})
				if err != nil {
					b.Fatal(err)
				}
				if rat.One.Less(s.MaxTardiness()) {
					b.Fatal("bound violated")
				}
			}
		})
	}
}

func BenchmarkPDBEngine(b *testing.B) {
	for _, cfg := range []struct{ m, n int }{{2, 6}, {4, 12}, {8, 24}} {
		sys := benchSystem(cfg.m, cfg.n, 120)
		b.Run(fmt.Sprintf("M%d_N%d", cfg.m, cfg.n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := pfair.RunPDB(sys, pfair.PDBOptions{M: cfg.m})
				if err != nil {
					b.Fatal(err)
				}
				if rat.One.Less(res.Schedule.MaxTardiness()) {
					b.Fatal("bound violated")
				}
			}
		})
	}
}

// benchSystemQ is benchSystem with an explicit weight grid q, needed for
// task counts that exceed the default grid's minimum-weight capacity
// (GridWeights requires n ≤ m·q).
func benchSystemQ(m, n int, q, horizon int64) *pfair.System {
	rng := rand.New(rand.NewSource(99))
	ws := gen.GridWeights(rng, n, q, int64(m)*q, gen.MixedWeights)
	return model.Periodic(ws, horizon)
}

// BenchmarkDVQLarge measures the DVQ engine on large full-utilization
// systems (≥ 64 tasks); the M=16 row is the headline configuration for the
// fast-path scheduling core. Run with -benchmem to see per-run allocations.
func BenchmarkDVQLarge(b *testing.B) {
	for _, cfg := range []struct {
		m, n int
		q    int64
	}{{4, 64, 20}, {16, 64, 12}, {16, 128, 12}} {
		sys := benchSystemQ(cfg.m, cfg.n, cfg.q, 60)
		y := pfair.UniformYield(5, 8)
		b.Run(fmt.Sprintf("M%d_N%d", cfg.m, cfg.n), func(b *testing.B) {
			b.ReportAllocs()
			b.ReportMetric(float64(sys.NumSubtasks()), "subtasks")
			for i := 0; i < b.N; i++ {
				s, err := pfair.RunDVQ(sys, pfair.DVQOptions{M: cfg.m, Yield: y})
				if err != nil {
					b.Fatal(err)
				}
				if rat.One.Less(s.MaxTardiness()) {
					b.Fatal("bound violated")
				}
			}
		})
	}
}

// BenchmarkSFQLarge is the SFQ-engine counterpart of BenchmarkDVQLarge.
func BenchmarkSFQLarge(b *testing.B) {
	for _, cfg := range []struct {
		m, n int
		q    int64
	}{{4, 64, 20}, {16, 64, 12}, {16, 128, 12}} {
		sys := benchSystemQ(cfg.m, cfg.n, cfg.q, 60)
		b.Run(fmt.Sprintf("M%d_N%d", cfg.m, cfg.n), func(b *testing.B) {
			b.ReportAllocs()
			b.ReportMetric(float64(sys.NumSubtasks()), "subtasks")
			for i := 0; i < b.N; i++ {
				s, err := pfair.RunSFQ(sys, pfair.SFQOptions{M: cfg.m})
				if err != nil {
					b.Fatal(err)
				}
				if s.MissCount() != 0 {
					b.Fatal("PD² missed")
				}
			}
		})
	}
}

func BenchmarkPD2Compare(b *testing.B) {
	sys := benchSystem(4, 12, 24)
	subs := sys.All()
	pd2 := prio.PD2{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x := subs[i%len(subs)]
		y := subs[(i*7+3)%len(subs)]
		pd2.Cmp(x, y)
	}
}

func BenchmarkGroupDeadline(b *testing.B) {
	tk := &model.Task{W: model.W(7, 9)}
	for i := 0; i < b.N; i++ {
		s := model.Subtask{Task: tk, Index: int64(i%500) + 1}
		if s.GroupDeadline() == 0 {
			b.Fatal("heavy task D = 0")
		}
	}
}

func BenchmarkRatArithmetic(b *testing.B) {
	x, y := rat.New(7, 12), rat.New(5, 9)
	for i := 0; i < b.N; i++ {
		x.Add(y).Mul(y).Sub(x)
	}
}

func BenchmarkE13EarlyRelease(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts, err := exp.E13EarlyRelease(int64(i), 2, 4)
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range pts {
			if p.ERMisses != 0 {
				b.Fatal("ER-PD² missed")
			}
		}
	}
}

func BenchmarkE14Ablation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.E14TieBreakAblation(int64(i), 5); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOnlineExecutive(b *testing.B) {
	weights := []model.Weight{
		model.W(1, 2), model.W(3, 4), model.W(1, 4), model.W(1, 2),
	}
	y := pfair.UniformYield(11, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ex := pfair.NewExecutive(2, nil)
		tasks := make([]*pfair.Task, len(weights))
		for k, w := range weights {
			task, err := ex.Register(fmt.Sprintf("t%d", k), w)
			if err != nil {
				b.Fatal(err)
			}
			tasks[k] = task
		}
		for slot := int64(0); slot < 48; slot++ {
			for k, w := range weights {
				if slot%w.P == 0 {
					if err := ex.SubmitJob(tasks[k], rat.FromInt(slot)); err != nil {
						b.Fatal(err)
					}
				}
			}
			if err := ex.Run(rat.FromInt(slot+1), y, nil); err != nil {
				b.Fatal(err)
			}
		}
		if _, err := ex.Drain(y); err != nil {
			b.Fatal(err)
		}
		if rat.One.Less(ex.Schedule().MaxTardiness()) {
			b.Fatal("bound violated")
		}
	}
}

func BenchmarkBaselineGlobalEDF(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	ws := gen.GridWeights(rng, 12, 12, 4*12, gen.MixedWeights)
	for i := 0; i < b.N; i++ {
		pfair.GlobalEDF(ws, 4, 120)
	}
}

func BenchmarkBaselineDFS(b *testing.B) {
	rng := rand.New(rand.NewSource(8))
	ws := gen.GridWeights(rng, 12, 12, 4*12, gen.MixedWeights)
	for i := 0; i < b.N; i++ {
		pfair.DFS(ws, 4, 120, true)
	}
}

func BenchmarkE15ClockDrift(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts, err := exp.E15ClockDrift(int64(i), 2, 2)
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range pts {
			if !p.DVQBoundHolds {
				b.Fatal("DVQ bound violated under drift sweep")
			}
		}
	}
}

func BenchmarkE16QuantumSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts, err := exp.E16QuantumSize(1, 20)
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range pts {
			if p.Feasible && p.Misses != 0 {
				b.Fatal("feasible quantum missed deadlines")
			}
		}
	}
}

func BenchmarkE17Overload(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.E17Overload(int64(i), 2, 2); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE18PolicyMatrix(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts, err := exp.E18PolicyMatrix(int64(i), 2, 2)
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range pts {
			if rat.One.Less(p.MaxTardiness) {
				b.Fatal("bound violated on M=2")
			}
		}
	}
}

func BenchmarkE19TightnessByM(b *testing.B) {
	delta := rat.New(1, 8)
	for i := 0; i < b.N; i++ {
		if _, err := exp.E19TightnessByM(delta, []int{2, 4, 8}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE20Dynamics(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts, err := exp.E20Dynamics(int64(i), 2, 2)
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range pts {
			if rat.One.Less(p.MaxTardiness) {
				b.Fatal("bound violated")
			}
		}
	}
}
