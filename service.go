package pfair

import (
	"desyncpfair/internal/admission"
	"desyncpfair/internal/server"
)

// This file re-exports the pfaird service layer: a multi-tenant scheduling
// service over the online executive (internal/server), its Go client
// (internal/client), and the stateful admission controller backing it.
// The daemon itself is cmd/pfaird; the load generator is cmd/pfairload.

// Server is the pfaird HTTP service: many isolated tenants, each a
// concurrency-safe PD²-DVQ online executive, behind a stdlib net/http
// JSON API with dispatch streaming and a /metrics exposition.
type Server = server.Server

// NewServer creates a pfaird service with an empty tenant registry. Mount
// Handler() on an http.Server and call Shutdown before closing the
// listener so in-flight dispatch streams drain.
func NewServer() *Server { return server.New() }

// Tenant is one tenant of the service: an online executive plus admission
// controller behind a single mutex, safe for concurrent use.
type Tenant = server.Tenant

// NewTenant creates a standalone tenant (id, m processors, policy name
// "PD2"/"PD"/"PF"/"EPDF", "" = PD²) without an HTTP server around it —
// the concurrency-safe counterpart of NewExecutive.
func NewTenant(id string, m int, policy string) (*Tenant, error) {
	return server.NewTenant(id, m, policy)
}

// DispatchEvent is one streamed scheduling decision of a tenant.
type DispatchEvent = server.DispatchEvent

// TenantInfo is a point-in-time tenant snapshot (virtual time,
// utilization, dispatch count, max tardiness, admission rejections).
type TenantInfo = server.TenantInfo

// AdmissionController tracks admitted weights against Σwt ≤ M online —
// the stateful counterpart of the analytical admission tests.
type AdmissionController = admission.Controller

// NewAdmissionController creates a controller for m processors.
func NewAdmissionController(m int) *AdmissionController { return admission.NewController(m) }
