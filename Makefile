# Convenience targets; everything is plain `go` underneath.
GO ?= go
BENCHTIME ?= 1x
BENCHCOUNT ?= 1

.PHONY: all build test vet fmt lint bench bench-json bench-diff race race-server cluster-smoke elastic-smoke fanout-smoke fuzz fuzz-smoke obs recovery scenario-smoke profile-mutex figures experiments soak pfaird pfairload pfairscen report clean

all: build lint test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

fmt:
	gofmt -l .

# lint fails (unlike `make fmt`, which only lists) so CI can gate on it.
lint:
	test -z "$$(gofmt -l .)"
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# The service layer is the concurrency-heavy code; give it a dedicated
# race gate that stays fast even when the full -race run grows slow.
race-server:
	$(GO) test -race ./internal/server/... ./internal/client/... ./internal/online/... ./internal/obs/...

# cluster-smoke is the replication gate: the in-process 3-node cluster
# (1 leader + 2 followers behind pfair-router) under -race — kill the
# leader mid-traffic, promotion must land in < 2s with zero acked-write
# loss and tardiness ≤ 1 quantum — plus term fencing, the seeded
# leader-kill invariant (acked ≤ recovered ≤ issued), and the log-serving
# reader's durable-prefix guarantees.
cluster-smoke:
	$(GO) test -race -count=1 -v ./internal/cluster/ -run 'TestClusterSmoke|TestFollowerReplicatesAndPromotes|TestStaleLeaderFenced'
	$(GO) test -race -count=1 ./internal/wal/ -run 'TestReaderTailsConcurrentGroupCommit|TestCrashMidBatch'

# elastic-smoke is the elastic-capacity gate, all under -race: the
# 50-seed resize-storm property harness (grow/shrink/reject/drain mixed
# with crash-at-byte fault injection; recovery must replay the capacity
# history exactly, acked ≤ recovered ≤ issued, tardiness ≤ 1 quantum),
# the failover test that kills a resizing leader and asserts the promoted
# follower lands on the acked capacity state, the boundary tests at m′
# and m′ + 1/q, and the lag-driven autoscaler suite including its
# live-server loop.
elastic-smoke:
	$(GO) test -race -count=1 -v ./internal/server/ -run 'TestResizeStormCrashRecovery'
	$(GO) test -race -count=1 -v ./internal/cluster/ -run 'TestElasticFailoverReplaysCapacityHistory'
	$(GO) test -race -count=1 ./internal/online/ -run 'Resize'
	$(GO) test -race -count=1 ./internal/admission/ ./internal/autoscale/

bench:
	$(GO) test -bench=. -benchmem .

# bench-json archives machine-readable results (root benchmarks incl. the
# PR 1 DVQ/SFQLarge set, plus the service-layer BenchmarkServerSubmit*
# family and the egress-plane set — DispatchFanout/{1,8,64}subs against
# its per-subscriber-encode baseline, and the pooled /metrics render).
# The checked-in document is generated with BENCHTIME=20x BENCHCOUNT=3;
# benchjson keeps the fastest of the repeated runs, so shared-host noise
# cancels out of the bench-diff gate.
bench-json:
	{ $(GO) test -run '^$$' -bench=. -benchmem -benchtime=$(BENCHTIME) -count=$(BENCHCOUNT) . && \
	  $(GO) test -run '^$$' -bench='BenchmarkServerSubmit|BenchmarkDispatchFanout|BenchmarkMetricsExposition' -benchmem -benchtime=1000x -count=$(BENCHCOUNT) ./internal/server/; } \
	  | $(GO) run ./cmd/benchjson > BENCH_10.json
	@echo wrote BENCH_10.json

# bench-diff gates the archived results: the benchmarks shared by the two
# documents must not regress in ns/op by more than 20%.
bench-diff:
	$(GO) run ./cmd/benchjson -diff BENCH_9.json BENCH_10.json

# fanout-smoke is the egress plane's CI gate, all under -race: the
# 20-seed byte-identity sweep (every NDJSON stream must equal an
# independent re-encode of its records), the 32-subscriber fan-out
# stress with subscribe/unsubscribe churn, both slow-consumer paths
# (lag-bound 410 eviction and the write-stall severing of a wedged
# reader), the raw-frame WAL reader contract, the client's control-line
# decoding, and the pfairload -streams mode consuming full fan-out.
fanout-smoke:
	$(GO) test -race -count=1 -v ./internal/server/ -run 'TestStreamByteIdentity20Seeds|TestFanoutStress|TestStreamEvictsLaggingSubscriber|TestStreamStallSeversWedgedReader'
	$(GO) test -race -count=1 ./internal/wal/ -run 'TestNextRaw'
	$(GO) test -race -count=1 ./internal/client/ -run 'TestStreamNextGone|TestStreamGoneRoundTrip'
	$(GO) test -race -count=1 ./cmd/pfairload/ -run 'TestStreamsFanout'

fuzz:
	$(GO) test ./internal/core/ -fuzz=FuzzTheorem3 -fuzztime=30s
	$(GO) test ./internal/core/ -fuzz=FuzzTheorem2 -fuzztime=30s
	$(GO) test ./internal/rat/ -fuzz=FuzzParse -fuzztime=15s

# fuzz-smoke runs the durability and decoding fuzz targets briefly —
# enough for CI to catch regressions in the WAL replay path, the
# admission boundary, and the trace-stream decoder without the
# open-ended budget of `make fuzz`.
fuzz-smoke:
	$(GO) test ./internal/wal/ -run '^$$' -fuzz=FuzzWALReplay -fuzztime=30s
	$(GO) test ./internal/server/ -run '^$$' -fuzz=FuzzTaskParams -fuzztime=30s
	$(GO) test ./internal/online/ -run '^$$' -fuzz=FuzzResize -fuzztime=30s
	$(GO) test ./internal/client/ -run '^$$' -fuzz=FuzzTraceDecoder -fuzztime=30s
	$(GO) test ./internal/rat/ -run '^$$' -fuzz=FuzzLatticeEquivalence -fuzztime=30s
	$(GO) test ./internal/scenario/ -run '^$$' -fuzz=FuzzScenarioSpec -fuzztime=30s

# obs runs the deterministic observability harness: the golden /metrics
# exposition (regenerate with `go test ./internal/server -run Golden
# -update`), the exact trace-lifecycle tests, and the scrape-vs-submit
# concurrency workout, all under -race.
obs:
	$(GO) test -race -count=1 ./internal/obs/
	$(GO) test -race -count=1 -v ./internal/server/ -run 'Golden|Trace|ObsConcurrent'
	$(GO) test -race -count=1 ./internal/client/ -run 'TraceDecoder|StreamTrace'

# recovery runs the crash-safety suite — fault-injected WAL recovery,
# checkpoint/restore determinism, shutdown edges, SIGTERM drain — under
# the race detector.
recovery:
	$(GO) test -race -count=1 ./internal/wal/ ./internal/faultfs/ ./cmd/pfaird/ \
		./internal/online/ -run 'Checkpoint|Restore|Crash|Recovery|Shutdown|SIGTERM|WAL'
	$(GO) test -race -count=1 ./internal/server/ -run 'CrashRecovery|Shutdown|SnapshotStorm|CrashNeverAcks'

# scenario-smoke is the scenario engine's CI gate: the golden-trace
# byte-compare (same seed + same spec ⇒ byte-identical trace; regenerate
# with `go test ./internal/scenario -run GoldenTrace -update` after an
# intentional format change), exact replay, the ≥100-seed counterfactual
# sweep against the exhaustive oracle, and the pfairscen/pfairload CLI
# paths — all deterministic, all seeded.
scenario-smoke:
	$(GO) test -race -count=1 -v ./internal/scenario/ -run 'TestScenarioGoldenTrace|TestReplayReproducesDispatches|TestExecAndHTTPTargetsAgree|TestCounterfactualMatchesOracle'
	$(GO) test -race -count=1 ./cmd/pfairscen/
	$(GO) test -race -count=1 ./cmd/pfairload/ -run 'TestScenarioMode|TestSeedInSummary'

# profile-mutex captures contention profiles for the submit hot path: run
# the parallel benchmarks with mutex/block profiling on, then inspect with
# `go tool pprof mutex.out`. After the single-writer loop, the profile
# should show no Tenant-level mutex at all — what remains is the WAL lock
# and the runtime's own channel locks.
profile-mutex:
	$(GO) test -run '^$$' -bench 'ServerSubmitParallel|ServerSubmitContended' -benchtime=200x \
		-mutexprofile=mutex.out -blockprofile=block.out ./internal/server/
	@echo "wrote mutex.out, block.out — inspect with: go tool pprof mutex.out"

figures:
	$(GO) run ./cmd/figures all

experiments:
	$(GO) run ./cmd/experiments -trials 30 -out artifacts all

soak:
	$(GO) run ./cmd/soak -trials 2000

pfaird:
	$(GO) run ./cmd/pfaird

pfairload:
	$(GO) run ./cmd/pfairload

pfairscen:
	$(GO) run ./cmd/pfairscen

report:
	$(GO) run ./cmd/report -o report.html

clean:
	rm -rf artifacts report.html
