# Convenience targets; everything is plain `go` underneath.
GO ?= go

.PHONY: all build test vet fmt bench race fuzz figures experiments soak report clean

all: build vet test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

fmt:
	gofmt -l .

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem .

fuzz:
	$(GO) test ./internal/core/ -fuzz=FuzzTheorem3 -fuzztime=30s
	$(GO) test ./internal/core/ -fuzz=FuzzTheorem2 -fuzztime=30s
	$(GO) test ./internal/rat/ -fuzz=FuzzParse -fuzztime=15s

figures:
	$(GO) run ./cmd/figures all

experiments:
	$(GO) run ./cmd/experiments -trials 30 -out artifacts all

soak:
	$(GO) run ./cmd/soak -trials 2000

report:
	$(GO) run ./cmd/report -o report.html

clean:
	rm -rf artifacts report.html
