package pfair

import "desyncpfair/internal/quantize"

// RealTask is a task with parameters in real time units (e.g. µs), to be
// quantized onto the Pfair quantum grid.
type RealTask = quantize.RealTask

// QuantumPoint is one candidate quantum size in a quantization curve.
type QuantumPoint = quantize.Point

// QuantizeWeights converts real task parameters to Pfair weights for
// quantum size q with a per-quantum overhead charge (both in the tasks'
// time unit): e = ⌈C/(q−overhead)⌉, p = ⌊T/q⌋.
func QuantizeWeights(rts []RealTask, q, overhead int64) ([]Weight, error) {
	return quantize.Weights(rts, q, overhead)
}

// QuantumCurve evaluates candidate quantum sizes: quantized utilization
// and feasibility on m processors per candidate.
func QuantumCurve(rts []RealTask, m int, overhead int64, candidates []int64) []QuantumPoint {
	return quantize.Curve(rts, m, overhead, candidates)
}

// BestQuantum returns the largest feasible quantum size among candidates.
func BestQuantum(rts []RealTask, m int, overhead int64, candidates []int64) (int64, error) {
	return quantize.Best(rts, m, overhead, candidates)
}
