package pfair

import (
	"desyncpfair/internal/replay"
)

// Replay types: play a computed schedule against a clock, turning
// assignments into timed dispatch/complete callbacks.
type (
	// ReplayOptions configures a replay run.
	ReplayOptions = replay.Options
	// ReplayEvent is one timed dispatch or completion callback.
	ReplayEvent = replay.Event
	// Clock abstracts time for the replayer (WallClock or a fake).
	Clock = replay.Clock
	// FakeClock advances only on Sleep; for deterministic tests/tools.
	FakeClock = replay.FakeClock
)

// Replay event kinds.
const (
	ReplayDispatch = replay.Dispatch
	ReplayComplete = replay.Complete
)

// WallClock returns the real-time clock.
func WallClock() Clock { return replay.WallClock{} }

// Replay plays the schedule against opts.Clock with one quantum mapped to
// opts.Quantum of real time, invoking opts.OnEvent for every dispatch and
// completion in time order. It returns the number of events delivered.
func Replay(s *Schedule, opts ReplayOptions) (int, error) { return replay.Run(s, opts) }
