// Package pfair is the public API of this repository: a library for Pfair
// scheduling of recurrent real-time task systems on multiprocessors, and a
// full reproduction of
//
//	U. Devi and J. Anderson, "Desynchronized Pfair Scheduling on
//	Multiprocessors", IPPS 2005.
//
// The library provides:
//
//   - the periodic / sporadic / IS / GIS task models with exact Pfair
//     windows (releases, deadlines, successor bits, group deadlines);
//   - the classical priority policies EPDF, PF, PD and PD²;
//   - an SFQ-model scheduler (synchronized fixed-size quanta, with the
//     staggered variant of Holman & Anderson);
//   - the paper's DVQ-model scheduler (desynchronized variable-size
//     quanta — work-conserving, event-driven over exact rational time);
//   - algorithm PD^B and the analysis machinery from the paper's proofs
//     (the S_DQ→S_B transform, blocking detection and Property PB,
//     k-compliance);
//   - schedule validity checking, tardiness/lag analysis, workload and
//     yield generators, ASCII/CSV rendering, and the baselines the paper
//     compares against (global/partitioned EDF, DFS).
//
// Quick start:
//
//	sys := pfair.Periodic([]pfair.Weight{pfair.W(1, 2), pfair.W(3, 4)}, 12)
//	s, err := pfair.RunDVQ(sys, pfair.DVQOptions{M: 2})
//	fmt.Println(s.MaxTardiness()) // ≤ 1 by Theorem 3
//
// The headline result (Theorem 3): under the DVQ model, PD² misses
// deadlines by at most one quantum for every task system with total
// utilization at most M — soft real-time guarantees survive
// desynchronization.
package pfair

import (
	"encoding/json"
	"io"

	"desyncpfair/internal/analysis"
	"desyncpfair/internal/baseline"
	"desyncpfair/internal/core"
	"desyncpfair/internal/gen"
	"desyncpfair/internal/model"
	"desyncpfair/internal/prio"
	"desyncpfair/internal/rat"
	"desyncpfair/internal/sched"
	"desyncpfair/internal/sfq"
	"desyncpfair/internal/trace"
)

// Core model types.
type (
	// Weight is a task utilization E/P with 0 < E ≤ P.
	Weight = model.Weight
	// Task is a recurrent task.
	Task = model.Task
	// Subtask is one quantum-length unit of work with a Pfair window.
	Subtask = model.Subtask
	// System is a GIS task system (periodic and IS systems are special cases).
	System = model.System
	// Rat is an exact rational number; all DVQ times are Rats.
	Rat = rat.Rat
	// Schedule is a produced schedule with validity and tardiness queries.
	Schedule = sched.Schedule
	// Assignment is one scheduling decision within a Schedule.
	Assignment = sched.Assignment
	// YieldFn gives each subtask's actual execution cost in (0, 1].
	YieldFn = sched.YieldFn
	// Policy is a subtask priority order (EPDF, PF, PD, PD²).
	Policy = prio.Policy
	// Summary is the analysis roll-up of a schedule.
	Summary = analysis.Summary
)

// Engine option structs.
type (
	// SFQOptions configures the synchronized fixed-quantum engine.
	SFQOptions = sfq.Options
	// DVQOptions configures the desynchronized variable-quantum engine.
	DVQOptions = core.DVQOptions
	// PDBOptions configures algorithm PD^B.
	PDBOptions = core.PDBOptions
	// PDBResult is a PD^B schedule plus its per-slot decision trace.
	PDBResult = core.PDBResult
	// BlockingEvent is a detected priority inversion in a DVQ schedule.
	BlockingEvent = core.BlockingEvent
	// Transform is the S_DQ → S_B construction of the paper's Sec. 3.2.
	Transform = core.Transform
	// ComplianceResult is a k-compliant task system and schedule (Sec. 3.3).
	ComplianceResult = core.ComplianceResult
)

// W returns the weight e/p.
func W(e, p int64) Weight { return model.W(e, p) }

// NewRat returns the exact rational n/d.
func NewRat(n, d int64) Rat { return rat.New(n, d) }

// IntRat returns the exact rational n/1.
func IntRat(n int64) Rat { return rat.FromInt(n) }

// NewSystem returns an empty task system; add tasks and subtasks for IS/GIS
// behaviour, or use Periodic for the synchronous periodic case.
func NewSystem() *System { return model.NewSystem() }

// Periodic builds a synchronous periodic system from weights, releasing all
// subtasks with release time < horizon.
func Periodic(weights []Weight, horizon int64) *System { return model.Periodic(weights, horizon) }

// Priority policies.
func EPDF() Policy { return prio.EPDF{} } // earliest pseudo-deadline first, no tie-breaks
func PF() Policy   { return prio.PF{} }   // Baruah et al. 1996
func PD() Policy   { return prio.PD{} }   // Baruah, Gehrke & Plaxton 1995 (as a PD² refinement)
func PD2() Policy  { return prio.PD2{} }  // Anderson & Srinivasan; optimal and cheapest

// PolicyByName resolves "EPDF", "PF", "PD" or "PD2" (nil if unknown).
func PolicyByName(name string) Policy { return prio.ByName(name) }

// RunSFQ schedules sys under the SFQ model (the classical Pfair setting).
func RunSFQ(sys *System, opts SFQOptions) (*Schedule, error) { return sfq.Run(sys, opts) }

// RunDVQ schedules sys under the paper's DVQ model: work-conserving,
// desynchronized, variable-size quanta. With the default PD² policy this is
// PD²-DVQ, whose tardiness is at most one quantum (Theorem 3).
func RunDVQ(sys *System, opts DVQOptions) (*Schedule, error) { return core.RunDVQ(sys, opts) }

// RunPDB schedules sys under algorithm PD^B (SFQ model), the worst-case
// mimicry of PD²-DVQ used in the paper's analysis.
func RunPDB(sys *System, opts PDBOptions) (*PDBResult, error) { return core.RunPDB(sys, opts) }

// Yield models.

// FullCost makes every subtask use its whole quantum.
func FullCost(s *Subtask) Rat { return sched.FullCost(s) }

// ConstCost makes every subtask cost exactly c ∈ (0, 1].
func ConstCost(c Rat) YieldFn { return sched.ConstCost(c) }

// UniformYield draws per-subtask costs uniformly from {1/den, …, 1},
// deterministically from seed.
func UniformYield(seed, den int64) YieldFn { return gen.UniformYield(seed, den) }

// BimodalYield uses the full quantum with probability pFull (percent) and
// otherwise yields early (cost ≤ 1/2).
func BimodalYield(seed int64, pFull int, den int64) YieldFn {
	return gen.BimodalYield(seed, pFull, den)
}

// AdversarialYield makes selected subtasks yield δ before the quantum end
// (nil victim selects all) — the paper's tightness construction.
func AdversarialYield(delta Rat, victim func(*Subtask) bool) YieldFn {
	return gen.AdversarialYield(delta, victim)
}

// Analysis.

// Summarize rolls up tardiness, misses, response and utilization measures.
func Summarize(s *Schedule) Summary { return analysis.Summarize(s) }

// QuantumResidue is the processor time stranded by early yields under SFQ.
func QuantumResidue(s *Schedule) Rat { return analysis.QuantumResidue(s) }

// CheckPfairness verifies |lag| < 1 throughout (synchronous periodic
// systems only).
func CheckPfairness(s *Schedule) error { return analysis.CheckPfairness(s) }

// Paper machinery.

// BuildSB constructs the S_DQ → S_B transform of Sec. 3.2 from a DVQ
// schedule.
func BuildSB(dq *Schedule) *Transform { return core.BuildSB(dq) }

// FindBlocking detects eligibility- and predecessor-blocking (Sec. 3.1) in
// a DVQ schedule produced under pol.
func FindBlocking(dq *Schedule, pol Policy) []BlockingEvent { return core.FindBlocking(dq, pol) }

// CheckPropertyPB verifies Lemma 1 (Property PB) on a DVQ schedule.
func CheckPropertyPB(dq *Schedule, pol Policy) error { return core.CheckPropertyPB(dq, pol) }

// RunCompliant builds the k-compliant system and schedule of Sec. 3.3.
func RunCompliant(sysB *System, pdb *PDBResult, k int) (*ComplianceResult, error) {
	return core.RunCompliant(sysB, pdb, k)
}

// Rendering.

// RenderSlots draws a slot-based schedule as a processor×slot grid.
func RenderSlots(s *Schedule) string { return trace.RenderSlots(s) }

// RenderTimeline draws a DVQ schedule as per-processor rational intervals.
func RenderTimeline(s *Schedule) string { return trace.RenderTimeline(s) }

// RenderWindows draws a task's subtask windows in the style of the paper's
// Fig. 1.
func RenderWindows(sys *System, task *Task) string { return trace.RenderWindows(sys, task) }

// Baselines.

// GlobalEDF runs job-level global EDF on a periodic system.
func GlobalEDF(weights []Weight, m int, horizon int64) baseline.EDFResult {
	return baseline.GlobalEDF(weights, m, horizon)
}

// PartitionedEDF partitions with first-fit-decreasing and runs per-
// processor EDF; it errors when no partition exists.
func PartitionedEDF(weights []Weight, m int, horizon int64) (baseline.EDFResult, error) {
	return baseline.PartitionedEDF(weights, m, horizon)
}

// DFS runs the reconstruction of Chandra et al.'s Deadline Fair Scheduling.
func DFS(weights []Weight, m int, horizon int64, workConserving bool) baseline.DFSResult {
	return baseline.DFS(weights, m, horizon, workConserving)
}

// ParseRat parses "n", "n/d" or an exact decimal like "0.75".
func ParseRat(s string) (Rat, error) { return rat.Parse(s) }

// Ablation policies (deliberately weakened PD² variants; they miss
// deadlines and exist for the E14 tie-break ablation).

// PD2NoGroup is PD² without the group-deadline tie-break.
func PD2NoGroup() Policy { return prio.PD2NoGroup{} }

// PD2NoBBit is PD² without either tie-break (EPDF under another name).
func PD2NoBBit() Policy { return prio.PD2NoBBit{} }

// Rate-monotonic baselines.

// GlobalRM runs job-level global rate-monotonic scheduling.
func GlobalRM(weights []Weight, m int, horizon int64) baseline.EDFResult {
	return baseline.GlobalRM(weights, m, horizon)
}

// PartitionedRM partitions under the Liu–Layland bound and runs
// per-processor RM; it errors when no admissible partition exists.
func PartitionedRM(weights []Weight, m int, horizon int64) (baseline.EDFResult, error) {
	return baseline.PartitionedRM(weights, m, horizon)
}

// LiuLaylandBound returns the classical RM utilization bound n·(2^{1/n}−1).
func LiuLaylandBound(n int) float64 { return baseline.LiuLaylandBound(n) }

// DhallWeights returns the canonical Dhall-effect task set for m
// processors: feasible for Pfair, lethal for global RM/EDF.
func DhallWeights(m int, period int64) []Weight { return baseline.DhallWeights(m, period) }

// AddSporadic adds a sporadic task to sys with explicit job release times
// (non-decreasing, separated by at least the period).
func AddSporadic(sys *System, name string, w Weight, releases []int64) (*Task, error) {
	return sys.AddSporadic(name, w, releases)
}

// WriteScheduleCSV emits the schedule as CSV rows.
func WriteScheduleCSV(w io.Writer, s *Schedule) error { return trace.WriteCSV(w, s) }

// WriteScheduleHTML renders the schedule as a self-contained HTML Gantt
// chart with exact rational positioning and tardiness highlighting.
func WriteScheduleHTML(w io.Writer, s *Schedule, title string) error {
	return trace.WriteHTML(w, s, title)
}

// WriteLagCSV emits every task's lag trajectory as CSV for plotting.
func WriteLagCSV(w io.Writer, s *Schedule) error { return analysis.WriteLagCSV(w, s) }

// Migrations counts inter-processor migrations in a schedule.
func Migrations(s *Schedule) int { return analysis.Migrations(s) }

// CheckWorkConserving verifies that no processor idles while ready work
// exists — the defining property of the DVQ model.
func CheckWorkConserving(s *Schedule) error { return core.CheckWorkConserving(s) }

// TardinessHistogram buckets subtask tardiness into eighths of a quantum.
func TardinessHistogram(s *Schedule) analysis.Histogram { return analysis.TardinessHistogram(s) }

// SaveSystem writes the task system as JSON (the format cmd/pfairsim's
// -tasks flag reads; see internal/model's JSON doc).
func SaveSystem(w io.Writer, sys *System) error {
	return json.NewEncoder(w).Encode(sys)
}

// LoadSystem reads a task system from JSON and validates it.
func LoadSystem(r io.Reader) (*System, error) {
	sys := NewSystem()
	if err := json.NewDecoder(r).Decode(sys); err != nil {
		return nil, err
	}
	return sys, nil
}

// DiffSchedules lists the subtasks two schedules of the same system place
// differently.
func DiffSchedules(a, b *Schedule) []sched.Difference { return sched.Diff(a, b) }

// SchedulesEqual reports whether two schedules of the same system place
// every subtask identically.
func SchedulesEqual(a, b *Schedule) bool { return sched.Equal(a, b) }

// CheckLemma2 verifies the PD^B counterpart of Property PB on a PD^B run.
func CheckLemma2(res *PDBResult, pol Policy) error { return core.CheckLemma2(res, pol) }

// CheckClaim5 verifies the Lemma 6 induction-step trichotomy for a PD^B run.
func CheckClaim5(sysB *System, pdb *PDBResult) error { return core.CheckClaim5(sysB, pdb) }

// CheckLemma6 runs the full k-compliance induction for a PD^B run.
func CheckLemma6(sysB *System, pdb *PDBResult) error { return core.CheckLemma6(sysB, pdb) }

// RenderPDBTrace draws a PD^B run's per-slot EB/PB/DB partitions and picks.
func RenderPDBTrace(res *PDBResult) string { return trace.RenderPDBTrace(res.Slots) }

// CheckISPfairness verifies the generalized (per-subtask fluid) Pfairness
// condition −1 < lag < 1 for IS/GIS schedules whose subtasks run inside
// their PF-windows.
func CheckISPfairness(s *Schedule) error { return analysis.CheckISPfairness(s) }

// Jobs aggregates per-job completion and tardiness statistics.
func Jobs(s *Schedule) []analysis.JobStat { return analysis.Jobs(s) }

// MaxJobTardiness returns the largest per-job tardiness in the schedule.
func MaxJobTardiness(s *Schedule) Rat { return analysis.MaxJobTardiness(s) }
