package main

import (
	"context"
	"net/http"
	"net/http/httptest"
	"net/http/httptrace"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"desyncpfair/internal/server"
)

// The acceptance run: ≥ 10k submit+advance requests against an in-process
// server, across multiple tenants, with latency percentiles reported.
// 4 tenants × 4 tasks × 500 jobs = 8000 submits + 2000 advances (one per
// 4 submits) = 10000 timed requests.
func TestLoadTenThousandRequests(t *testing.T) {
	var out strings.Builder
	rep, err := run(config{
		tenants:      4,
		tasks:        4,
		jobs:         500,
		workers:      8,
		m:            2,
		advanceEvery: 4,
		policy:       "PD2",
	}, &out)
	if err != nil {
		t.Fatalf("load run failed: %v\n%s", err, out.String())
	}
	timed := 4*4*500 + 4*4*500/4
	if timed < 10000 {
		t.Fatalf("test is mis-sized: only %d timed requests", timed)
	}
	if rep.Requests < timed {
		t.Errorf("report counts %d requests, want ≥ %d", rep.Requests, timed)
	}
	if rep.Throughput <= 0 {
		t.Errorf("non-positive throughput %f", rep.Throughput)
	}
	if rep.P50 <= 0 || rep.P50 > rep.P99 || rep.P99 > rep.Max {
		t.Errorf("implausible percentiles p50=%v p99=%v max=%v", rep.P50, rep.P99, rep.Max)
	}
	// Every submitted job is one subtask (E=1); all must get dispatched.
	if want := int64(4 * 4 * 500); rep.Dispatched != want {
		t.Errorf("dispatched %d subtasks, want %d", rep.Dispatched, want)
	}
	if rep.MaxTardiness != "0" && !strings.Contains(rep.MaxTardiness, "/") && rep.MaxTardiness != "1" {
		t.Errorf("suspicious max tardiness %q", rep.MaxTardiness)
	}
	// The server-side histogram saw exactly the successful submits, and
	// its interpolated percentiles are ordered like any quantiles.
	if want := uint64(4 * 4 * 500); rep.SrvCount != want {
		t.Errorf("server-side ack count %d, want %d", rep.SrvCount, want)
	}
	if rep.SrvP50 < 0 || rep.SrvP50 > rep.SrvP90 || rep.SrvP90 > rep.SrvP99 {
		t.Errorf("implausible server percentiles p50=%v p90=%v p99=%v", rep.SrvP50, rep.SrvP90, rep.SrvP99)
	}
	// The server times itself from inside the handler, so its view of the
	// median cannot exceed the client's round-trip median by more than the
	// top finite bucket bound (the estimate's worst-case error).
	if rep.SrvP50 > rep.P50+66*time.Millisecond {
		t.Errorf("server p50 %v far above client p50 %v", rep.SrvP50, rep.P50)
	}
	for _, want := range []string{"latency p50/p90/p99", "server ack p50/p90/p99", "req/s", "max tardiness", "tenant m", "resize-rejected"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("report output missing %q:\n%s", want, out.String())
		}
	}
	// The summary reports measured capacity: one pfaird_tenant_m gauge per
	// tenant, each still at the -m the run created it with (no resizes).
	if len(rep.TenantM) != 4 {
		t.Errorf("TenantM has %d entries, want 4: %v", len(rep.TenantM), rep.TenantM)
	}
	for id, m := range rep.TenantM {
		if m != 2 {
			t.Errorf("tenant %s reports m=%d, want 2", id, m)
		}
	}
	if rep.ResizeRejected != 0 {
		t.Errorf("%d resize rejections in a run with no resizes", rep.ResizeRejected)
	}
}

// TestBatchLoadRun drives the same acceptance workload through the batch
// submit path (-batch 5): every job still dispatches exactly once, so the
// batch API is equivalent to singular submits under load.
func TestBatchLoadRun(t *testing.T) {
	var out strings.Builder
	rep, err := run(config{
		tenants:      2,
		tasks:        4,
		jobs:         100,
		workers:      4,
		m:            2,
		advanceEvery: 5,
		batch:        5,
		policy:       "PD2",
	}, &out)
	if err != nil {
		t.Fatalf("batch load run failed: %v\n%s", err, out.String())
	}
	if want := int64(2 * 4 * 100); rep.Dispatched != want {
		t.Errorf("dispatched %d subtasks, want %d", rep.Dispatched, want)
	}
	// The server-side histogram records one ack latency per job, batched or
	// not, so the two modes stay comparable.
	if want := uint64(2 * 4 * 100); rep.SrvCount != want {
		t.Errorf("server-side ack count %d, want %d", rep.SrvCount, want)
	}
}

// TestTransportReusesConnections pins the shared-transport fix: with
// `workers` concurrent requests over three rounds, the pool must serve
// rounds two and three from kept-alive connections instead of redialing —
// the default transport's per-host idle cap of 2 would open fresh
// connections on nearly every request at high concurrency and exhaust
// ephemeral ports on long runs.
func TestTransportReusesConnections(t *testing.T) {
	const workers = 16
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	}))
	defer srv.Close()

	tr := newTransport(workers)
	defer tr.CloseIdleConnections()
	hc := &http.Client{Transport: tr}

	var dials atomic.Int64
	trace := &httptrace.ClientTrace{
		GotConn: func(info httptrace.GotConnInfo) {
			if !info.Reused {
				dials.Add(1)
			}
		},
	}
	for round := 0; round < 3; round++ {
		var wg sync.WaitGroup
		// A barrier per round: all workers in flight at once, so the round
		// genuinely needs `workers` connections, and later rounds prove
		// they were kept alive rather than redialed.
		release := make(chan struct{})
		for i := 0; i < workers; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				<-release
				ctx := httptrace.WithClientTrace(context.Background(), trace)
				req, err := http.NewRequestWithContext(ctx, http.MethodGet, srv.URL, nil)
				if err != nil {
					t.Error(err)
					return
				}
				resp, err := hc.Do(req)
				if err != nil {
					t.Error(err)
					return
				}
				resp.Body.Close()
			}()
		}
		close(release)
		wg.Wait()
	}
	// 3 rounds × 16 concurrent requests: every dial beyond the worker count
	// means the pool dropped a reusable connection.
	if got := dials.Load(); got > workers {
		t.Errorf("%d new connections across 3×%d requests; the transport is not reusing connections", got, workers)
	}
}

// TestResizeRejectedCountedSeparately: submits answered 409 (capacity
// withdrawn by a resize racing the load) must be counted on their own
// line, not lumped into 429 backpressure, and must not abort the run.
// A middleware in front of a real server rejects the first five submits
// the way a shrinking tenant would.
func TestResizeRejectedCountedSeparately(t *testing.T) {
	srv := server.New()
	defer srv.Shutdown()
	h := srv.Handler()
	var submits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPost && strings.HasSuffix(r.URL.Path, "/jobs") {
			if submits.Add(1) <= 5 {
				w.Header().Set("Content-Type", "application/json")
				w.WriteHeader(http.StatusConflict)
				w.Write([]byte(`{"error":"capacity shrink in progress"}`))
				return
			}
		}
		h.ServeHTTP(w, r)
	}))
	defer ts.Close()

	var out strings.Builder
	rep, err := run(config{
		addr: ts.URL, tenants: 1, tasks: 2, jobs: 6, workers: 1, m: 1,
		advanceEvery: 3, batch: 1, policy: "PD2", seed: 1,
	}, &out)
	if err != nil {
		t.Fatalf("run aborted on resize rejection: %v\n%s", err, out.String())
	}
	if rep.ResizeRejected != 5 {
		t.Errorf("ResizeRejected = %d, want 5", rep.ResizeRejected)
	}
	if rep.Backpressure != 0 {
		t.Errorf("409s leaked into the backpressure counter: %d", rep.Backpressure)
	}
	// 12 attempted submits, 5 rejected: the 7 accepted jobs (E=1 each)
	// all dispatch on drain.
	if rep.Dispatched != 7 {
		t.Errorf("dispatched %d subtasks, want 7", rep.Dispatched)
	}
	if !strings.Contains(out.String(), "resize-rejected    : 5 × 409") {
		t.Errorf("summary does not report the rejections:\n%s", out.String())
	}
}

func TestPercentile(t *testing.T) {
	if got := percentile(nil, 0.5); got != 0 {
		t.Errorf("percentile(nil) = %v", got)
	}
	sorted := make([]time.Duration, 100)
	for i := range sorted {
		sorted[i] = time.Duration(i+1) * time.Millisecond
	}
	for _, tc := range []struct {
		q    float64
		want time.Duration
	}{
		{0.50, 50 * time.Millisecond},
		{0.90, 90 * time.Millisecond},
		{0.99, 99 * time.Millisecond},
		{1.00, 100 * time.Millisecond},
	} {
		if got := percentile(sorted, tc.q); got != tc.want {
			t.Errorf("percentile(q=%g) = %v, want %v", tc.q, got, tc.want)
		}
	}
}

// TestSeedInSummary: the worker-shuffle seed must be printed so any run
// can be reproduced from its own output.
func TestSeedInSummary(t *testing.T) {
	var out strings.Builder
	_, err := run(config{
		tenants: 1, tasks: 2, jobs: 4, workers: 2, m: 1,
		advanceEvery: 2, batch: 1, policy: "PD2", seed: 37,
	}, &out)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "seed               : 37") {
		t.Fatalf("summary does not print the seed:\n%s", out.String())
	}
}

// TestScenarioMode: -scenario swaps the synthetic loop for a declarative
// workload driven through the same in-process server, reporting per-class
// tardiness and the Jain index instead of latency percentiles.
func TestScenarioMode(t *testing.T) {
	dir := t.TempDir()
	specPath := filepath.Join(dir, "spec.json")
	spec := []byte(`{
  "name": "loadscen", "seed": 9, "m": 2, "horizon": 24,
  "classes": [{"name": "gold", "maxTardiness": "0"}],
  "cohorts": [{
    "name": "web", "clients": 2, "class": "gold",
    "tasks": [{"name": "a", "e": 1, "p": 4}],
    "arrival": {"process": "poisson", "mean": "5"}
  }]
}`)
	if err := os.WriteFile(specPath, spec, 0o644); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	rep, err := run(config{
		tenants: 1, tasks: 1, jobs: 1, workers: 1, m: 1,
		advanceEvery: 1, batch: 1, scenario: specPath,
	}, &out)
	if err != nil {
		t.Fatalf("scenario run: %v\n%s", err, out.String())
	}
	for _, want := range []string{"scenario    loadscen", "jain index", "class gold"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("scenario output missing %q:\n%s", want, out.String())
		}
	}
	if rep.Dispatched == 0 {
		t.Fatal("scenario run dispatched nothing")
	}
	// The -seed override must reshape the workload deterministically.
	var a, b, c strings.Builder
	if _, err := run(config{scenario: specPath, seed: 5, seedSet: true, tenants: 1, tasks: 1, jobs: 1, workers: 1, m: 1, advanceEvery: 1, batch: 1}, &a); err != nil {
		t.Fatal(err)
	}
	if _, err := run(config{scenario: specPath, seed: 5, seedSet: true, tenants: 1, tasks: 1, jobs: 1, workers: 1, m: 1, advanceEvery: 1, batch: 1}, &b); err != nil {
		t.Fatal(err)
	}
	if _, err := run(config{scenario: specPath, seed: 6, seedSet: true, tenants: 1, tasks: 1, jobs: 1, workers: 1, m: 1, advanceEvery: 1, batch: 1}, &c); err != nil {
		t.Fatal(err)
	}
	norm := func(s string) string { // the loopback port differs per run
		lines := strings.SplitN(s, "\n", 2)
		return lines[len(lines)-1]
	}
	if norm(a.String()) != norm(b.String()) {
		t.Fatalf("same seed produced different scenario reports:\n%s\n---\n%s", a.String(), b.String())
	}
	if norm(a.String()) == norm(c.String()) {
		t.Fatal("different seeds produced identical scenario reports")
	}
}

// TestStreamsFanout runs the fan-out mode: every follower must consume
// the tenant's full dispatch log (the server encodes each decision once
// and every follower reads the same cached frames), so the total frame
// count is exactly dispatches × streams-per-tenant.
func TestStreamsFanout(t *testing.T) {
	var out strings.Builder
	rep, err := run(config{
		tenants:      2,
		tasks:        2,
		jobs:         50,
		workers:      4,
		m:            2,
		advanceEvery: 4,
		policy:       "PD2",
		streams:      3,
	}, &out)
	if err != nil {
		t.Fatalf("fan-out run failed: %v\n%s", err, out.String())
	}
	if want := int64(2 * 2 * 50); rep.Dispatched != want {
		t.Fatalf("dispatched %d, want %d", rep.Dispatched, want)
	}
	if want := rep.Dispatched * 3; rep.StreamFrames != want {
		t.Errorf("followers consumed %d frames, want %d (full fan-out)", rep.StreamFrames, want)
	}
	if rep.StreamRate <= 0 {
		t.Errorf("non-positive stream rate %f", rep.StreamRate)
	}
	if rep.StreamLagP50 > rep.StreamLagP99 || rep.StreamLagP99 > rep.StreamLagMax {
		t.Errorf("implausible lag percentiles p50=%d p99=%d max=%d",
			rep.StreamLagP50, rep.StreamLagP99, rep.StreamLagMax)
	}
	for _, want := range []string{"streams            : 3/tenant", "stream lag p50/p90/p99"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("report output missing %q:\n%s", want, out.String())
		}
	}
}
