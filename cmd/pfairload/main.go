// Command pfairload is the load generator for pfaird: it drives N tenants
// × K tasks with concurrent submit/advance traffic through internal/client
// and reports throughput and latency percentiles, so the service's
// capacity is measured rather than asserted. With no -addr it spins up an
// in-process pfaird on a loopback listener and load-tests that, which is
// also how the regression test keeps the ≥10k-request path honest.
//
// Usage:
//
//	pfairload -tenants 4 -tasks 8 -jobs 500 -workers 8
//	pfairload -addr http://localhost:8080 -tenants 2 -jobs 100
//
// Each task has weight 1/K, so every tenant's utilization is exactly 1 and
// admission always passes on m ≥ 1; the point here is request throughput,
// not schedulability stress. The run fails (exit 1) if any tenant ends
// with max tardiness above one quantum — Theorem 3 must survive load.
//
// The summary also reports measured capacity: the active M per tenant
// scraped from the server's pfaird_tenant_m gauges (which an autoscaler
// may have moved mid-run), and submits rejected 409 by a racing resize —
// counted on their own line, separate from 429 ring backpressure.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"desyncpfair/internal/client"
	"desyncpfair/internal/model"
	"desyncpfair/internal/obs"
	"desyncpfair/internal/rat"
	"desyncpfair/internal/scenario"
	"desyncpfair/internal/server"
)

type config struct {
	addr         string // target server; "" = in-process loopback server
	tenants      int
	tasks        int // per tenant
	jobs         int // submits per (tenant, task)
	workers      int
	m            int // processors per tenant
	advanceEvery int // advance the tenant's virtual time every this many submits
	batch        int // jobs per submit request; >1 uses POST jobs:batch
	policy       string
	dataDir      string // durable in-process server (WAL under load)
	seed         int64  // worker-shuffle seed; also overrides a scenario's seed when set
	seedSet      bool   // -seed was given explicitly on the command line
	scenario     string // path to a scenario spec; replaces the synthetic load loop
	streams      int    // concurrent dispatch-stream followers per tenant; 0 disables
}

// newTransport builds the shared keep-alive transport for a load run. The
// default transport caps idle connections per host at 2, so any -workers
// above that reconnects on nearly every request and a long run exhausts
// ephemeral ports; sizing the idle pool to the worker count keeps one warm
// connection per worker.
func newTransport(workers int) *http.Transport {
	tr := http.DefaultTransport.(*http.Transport).Clone()
	if tr.MaxIdleConns < workers {
		tr.MaxIdleConns = workers
	}
	tr.MaxIdleConnsPerHost = workers
	return tr
}

// report is one load run's outcome. The P* percentiles are measured by
// the client (request round trips); the SrvP* ones come from the server's
// own submit→ack histogram on /metrics, estimated by interpolation within
// its buckets — so the two views of the same load can be compared, and the
// error of each estimate is bounded by its bucket's width.
type report struct {
	Requests     int           // total HTTP requests issued (setup + load + drain)
	Wall         time.Duration // load-phase wall clock
	Throughput   float64       // load-phase requests per second
	P50, P90     time.Duration
	P99, Max     time.Duration
	SrvP50       time.Duration // server-side submit→ack percentiles
	SrvP90       time.Duration
	SrvP99       time.Duration
	SrvCount     uint64 // observations behind the server-side percentiles
	Dispatched   int64  // scheduling decisions across all tenants
	MaxTardiness string // worst tardiness across tenants (rat string)
	Backpressure int64  // 429 replies (submit ring full); retried, not errors
	// ResizeRejected counts submits answered 409: a capacity rejection
	// from a resize racing the load (an autoscaler shrink, an operator
	// resize draining tasks out from under the run). Unlike 429
	// backpressure these are not retried — the job is skipped and
	// counted, because capacity said no rather than "not yet".
	ResizeRejected int64
	// TenantM is the active processor count per tenant at the end of the
	// run, scraped from the pfaird_tenant_m gauges — under an autoscaler
	// this is measured capacity, not the -m the run asked for.
	TenantM map[string]int
	// Fan-out side (-streams > 0): frames consumed across all followers,
	// their consumption rate, how many followers the server evicted for
	// lagging (each reopened at the hinted position), and the subscriber
	// lag distribution in records, sampled against the fastest follower of
	// the same tenant while the load ran.
	StreamFrames  int64
	StreamRate    float64
	StreamReopens int64
	StreamLagP50  int64
	StreamLagP90  int64
	StreamLagP99  int64
	StreamLagMax  int64
}

// fanout runs the -streams followers: cfg.streams dispatch-stream
// subscribers per tenant, all following from 0, each counting the frames
// it consumes. A sampler thread periodically records every follower's lag
// behind the fastest follower of its tenant — a client-side stand-in for
// the log tip that needs no extra server requests. A follower the server
// evicts (in-band 410 control line) reconnects at the hinted ResumeFrom
// and is counted, exercising the slow-consumer path under real load.
type fanout struct {
	cancel      context.CancelFunc
	wg          sync.WaitGroup
	frames      atomic.Int64
	reopens     atomic.Int64
	pos         [][]*atomic.Int64 // [tenant][subscriber] next seq wanted
	samplerDone chan struct{}

	mu         sync.Mutex
	lagSamples []int64
}

func startStreams(parent context.Context, c *client.Client, tenants, streams int) *fanout {
	ctx, cancel := context.WithCancel(parent)
	f := &fanout{cancel: cancel, samplerDone: make(chan struct{})}
	f.pos = make([][]*atomic.Int64, tenants)
	for ti := range f.pos {
		f.pos[ti] = make([]*atomic.Int64, streams)
		for si := range f.pos[ti] {
			p := new(atomic.Int64)
			f.pos[ti][si] = p
			f.wg.Add(1)
			go f.follow(ctx, c, tenantID(ti), p)
		}
	}
	go f.sample(ctx)
	return f
}

func (f *fanout) follow(ctx context.Context, c *client.Client, tenant string, pos *atomic.Int64) {
	defer f.wg.Done()
	for ctx.Err() == nil {
		st, err := c.StreamDispatches(ctx, tenant, pos.Load(), true)
		if err != nil {
			if ctx.Err() != nil {
				return
			}
			time.Sleep(5 * time.Millisecond) // server not ready yet; retry
			continue
		}
		for {
			_, err := st.Next()
			if err == nil {
				pos.Add(1)
				f.frames.Add(1)
				continue
			}
			var gone *client.StreamGoneError
			if errors.As(err, &gone) {
				// Evicted for lagging: resume where the server said to.
				pos.Store(gone.ResumeFrom)
				f.reopens.Add(1)
			}
			break
		}
		st.Close()
	}
}

func (f *fanout) sample(ctx context.Context) {
	defer close(f.samplerDone)
	tick := time.NewTicker(2 * time.Millisecond)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
			f.mu.Lock()
			for _, subs := range f.pos {
				var tip int64
				for _, p := range subs {
					if v := p.Load(); v > tip {
						tip = v
					}
				}
				for _, p := range subs {
					f.lagSamples = append(f.lagSamples, tip-p.Load())
				}
			}
			f.mu.Unlock()
		}
	}
}

// await blocks until every follower's position reaches its tenant's
// target (the post-drain dispatch count) or the deadline passes — the
// backlog is finite once the load stops, so normally this is just the
// followers finishing their tail.
func (f *fanout) await(targets []int64, timeout time.Duration) {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		caughtUp := true
		for ti, subs := range f.pos {
			for _, p := range subs {
				if p.Load() < targets[ti] {
					caughtUp = false
				}
			}
		}
		if caughtUp {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// stop cancels the followers and folds their counters into the report.
func (f *fanout) stop(rep *report, wall time.Duration) {
	f.cancel()
	f.wg.Wait()
	<-f.samplerDone
	rep.StreamFrames = f.frames.Load()
	rep.StreamReopens = f.reopens.Load()
	if wall > 0 {
		rep.StreamRate = float64(rep.StreamFrames) / wall.Seconds()
	}
	sort.Slice(f.lagSamples, func(i, j int) bool { return f.lagSamples[i] < f.lagSamples[j] })
	rep.StreamLagP50 = percentileI64(f.lagSamples, 0.50)
	rep.StreamLagP90 = percentileI64(f.lagSamples, 0.90)
	rep.StreamLagP99 = percentileI64(f.lagSamples, 0.99)
	rep.StreamLagMax = percentileI64(f.lagSamples, 1.00)
}

func main() {
	cfg := config{}
	flag.StringVar(&cfg.addr, "addr", "", "pfaird base URL (empty: start an in-process server)")
	flag.IntVar(&cfg.tenants, "tenants", 4, "number of tenants")
	flag.IntVar(&cfg.tasks, "tasks", 8, "tasks per tenant")
	flag.IntVar(&cfg.jobs, "jobs", 500, "jobs submitted per task")
	flag.IntVar(&cfg.workers, "workers", 8, "concurrent client workers")
	flag.IntVar(&cfg.m, "m", 2, "processors per tenant")
	flag.IntVar(&cfg.advanceEvery, "advance-every", 4, "advance virtual time every N submits")
	flag.IntVar(&cfg.batch, "batch", 1, "jobs per submit request; >1 drives POST jobs:batch")
	flag.StringVar(&cfg.policy, "policy", "PD2", "priority policy (PD2, PD, PF, EPDF)")
	flag.StringVar(&cfg.dataDir, "data-dir", "", "make the in-process server durable: journal to this directory (measures WAL overhead under load)")
	flag.Int64Var(&cfg.seed, "seed", 1, "deterministic seed: shuffles each worker's pair order (and overrides a scenario spec's seed when given)")
	flag.StringVar(&cfg.scenario, "scenario", "", "drive a declarative scenario spec (JSON) through the server instead of the synthetic load loop")
	flag.IntVar(&cfg.streams, "streams", 0, "concurrent dispatch-stream followers per tenant (fan-out load; 0 disables)")
	flag.Parse()
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "seed" {
			cfg.seedSet = true
		}
	})

	rep, err := run(cfg, os.Stdout)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pfairload: %v\n", err)
		os.Exit(1)
	}
	maxTar, err := rat.Parse(rep.MaxTardiness)
	if err == nil && rat.One.Less(maxTar) {
		fmt.Fprintf(os.Stderr, "pfairload: max tardiness %s exceeds one quantum — Theorem 3 violated under load\n", rep.MaxTardiness)
		os.Exit(1)
	}
}

// run executes the load and writes the human report to out.
func run(cfg config, out io.Writer) (report, error) {
	if cfg.tenants < 1 || cfg.tasks < 1 || cfg.jobs < 1 || cfg.m < 1 {
		return report{}, fmt.Errorf("tenants, tasks, jobs and m must all be ≥ 1")
	}
	if cfg.workers < 1 {
		cfg.workers = 1
	}
	if cfg.advanceEvery < 1 {
		cfg.advanceEvery = 1
	}
	if cfg.batch < 1 {
		cfg.batch = 1
	}

	base := cfg.addr
	if base == "" {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return report{}, err
		}
		var srv *server.Server
		if cfg.dataDir != "" {
			// Durable mode: every command journals before it acks, so the
			// reported throughput includes the WAL's group-commit cost.
			srv, err = server.Open(server.Options{DataDir: cfg.dataDir})
			if err != nil {
				return report{}, err
			}
			defer srv.Close()
		} else {
			srv = server.New()
			defer srv.Shutdown()
		}
		hs := &http.Server{Handler: srv.Handler()}
		go hs.Serve(ln)
		defer hs.Close()
		base = "http://" + ln.Addr().String()
		fmt.Fprintf(out, "in-process pfaird on %s\n", base)
	}
	// 429 means a tenant's submit ring is full: explicit backpressure, not
	// a failure. The retry policy resends those with capped backoff
	// (honouring Retry-After) instead of hot-looping, OnRetry counts how
	// often it happened — sustained backpressure at a given worker count
	// is a capacity signal — and keyed submits additionally retry on
	// transient failures because the server dedupes them.
	var backpressure, resizeRejected atomic.Int64
	c := client.New(base, &http.Client{Timeout: 30 * time.Second, Transport: newTransport(cfg.workers)}).
		WithRetry(client.RetryPolicy{
			MaxAttempts: 4,
			OnRetry: func(err error) {
				var ae *client.APIError
				if errors.As(err, &ae) && ae.Status == http.StatusTooManyRequests {
					backpressure.Add(1)
				}
			},
		})
	ctx := context.Background()

	if cfg.scenario != "" {
		return runScenario(ctx, cfg, c, out)
	}

	// Setup: tenants and tasks (counted in Requests but not in latency).
	setup := 0
	for ti := 0; ti < cfg.tenants; ti++ {
		id := tenantID(ti)
		if _, err := c.CreateTenant(ctx, id, cfg.m, cfg.policy); err != nil {
			return report{}, fmt.Errorf("create %s: %w", id, err)
		}
		setup++
		for k := 0; k < cfg.tasks; k++ {
			if _, err := c.RegisterTask(ctx, id, taskID(k), model.W(1, int64(cfg.tasks))); err != nil {
				return report{}, fmt.Errorf("register %s/%s: %w", id, taskID(k), err)
			}
			setup++
		}
	}

	// Fan-out load: the followers ride along for the whole run, consuming
	// the same cached frames the server encodes once per decision.
	var fo *fanout
	if cfg.streams > 0 {
		fo = startStreams(ctx, c, cfg.tenants, cfg.streams)
	}

	// Load phase: workers own disjoint (tenant, task) pairs, so two workers
	// never submit for the same task, while tenants still see concurrent
	// traffic from several workers at once.
	type pair struct{ tenant, task string }
	var pairs []pair
	for ti := 0; ti < cfg.tenants; ti++ {
		for k := 0; k < cfg.tasks; k++ {
			pairs = append(pairs, pair{tenantID(ti), taskID(k)})
		}
	}
	perWorker := make([][]pair, cfg.workers)
	for i, p := range pairs {
		w := i % cfg.workers
		perWorker[w] = append(perWorker[w], p)
	}

	lats := make([][]time.Duration, cfg.workers)
	errs := make([]error, cfg.workers)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < cfg.workers; w++ {
		if len(perWorker[w]) == 0 {
			continue
		}
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			mine := perWorker[w]
			// Each worker shuffles its own pair list with an RNG derived from
			// (seed, worker), so the interleaving of tenants on the wire is
			// varied but exactly reproducible from the printed seed.
			rng := rand.New(rand.NewSource(cfg.seed + int64(w)*0x9e3779b9))
			rng.Shuffle(len(mine), func(i, j int) { mine[i], mine[j] = mine[j], mine[i] })
			lat := make([]time.Duration, 0, cfg.jobs*len(mine)*2)
			submits := 0
			advance := func(tenant string) bool {
				t0 := time.Now()
				_, err := c.AdvanceBy(ctx, tenant, "1")
				lat = append(lat, time.Since(t0))
				if err != nil {
					errs[w] = fmt.Errorf("advance %s: %w", tenant, err)
					return false
				}
				return true
			}
			for j := 0; j < cfg.jobs; j += cfg.batch {
				n := cfg.batch
				if j+n > cfg.jobs {
					n = cfg.jobs - j
				}
				for _, p := range mine {
					t0 := time.Now()
					var err error
					if n == 1 {
						// Unique per-worker keys make the submit idempotent,
						// so the retry policy may resend it on transient
						// failures without risking a double release.
						_, err = c.SubmitJobKeyed(ctx, p.tenant, server.SubmitJobRequest{
							Task: p.task, Key: fmt.Sprintf("w%d-%s-%s-%d", w, p.tenant, p.task, j),
						})
					} else {
						// One request, one fsync, n jobs: the group-commit
						// batch path.
						jobs := make([]server.SubmitJobRequest, n)
						for i := range jobs {
							jobs[i] = server.SubmitJobRequest{Task: p.task}
						}
						_, err = c.SubmitJobs(ctx, p.tenant, jobs)
					}
					lat = append(lat, time.Since(t0))
					if err != nil {
						// 409 is capacity saying no — a resize racing the
						// load shrank the tenant or drained its task. That
						// is an expected outcome of elastic capacity, not a
						// broken run: count it apart from 429 backpressure
						// (which the retry policy resends) and move on.
						if client.IsReject(err) {
							resizeRejected.Add(int64(n))
							continue
						}
						errs[w] = fmt.Errorf("submit %s/%s: %w", p.tenant, p.task, err)
						lats[w] = lat
						return
					}
					submits += n
					if submits%cfg.advanceEvery < n {
						if !advance(p.tenant) {
							lats[w] = lat
							return
						}
					}
				}
			}
			lats[w] = lat
		}(w)
	}
	wg.Wait()
	wall := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return report{}, err
		}
	}

	// Drain every tenant and collect the scheduler-side totals.
	var dispatched int64
	maxTar := rat.Zero
	drains := 0
	targets := make([]int64, cfg.tenants)
	for ti := 0; ti < cfg.tenants; ti++ {
		id := tenantID(ti)
		if _, err := c.Drain(ctx, id); err != nil {
			return report{}, fmt.Errorf("drain %s: %w", id, err)
		}
		info, err := c.Tenant(ctx, id)
		if err != nil {
			return report{}, err
		}
		dispatched += info.Dispatches
		targets[ti] = info.Dispatches
		tar, err := rat.Parse(info.MaxTardiness)
		if err != nil {
			return report{}, fmt.Errorf("tenant %s reports unparseable tardiness %q", id, info.MaxTardiness)
		}
		maxTar = rat.Max(maxTar, tar)
		drains += 2
	}
	if fo != nil {
		// Let the followers drain the finite post-load backlog before the
		// frame count is read, so the report reflects full fan-out.
		fo.await(targets, 10*time.Second)
	}
	fanWall := time.Since(start)

	var all []time.Duration
	for _, l := range lats {
		all = append(all, l...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	rep := report{
		Requests:       setup + len(all) + drains,
		Wall:           wall,
		Throughput:     float64(len(all)) / wall.Seconds(),
		P50:            percentile(all, 0.50),
		P90:            percentile(all, 0.90),
		P99:            percentile(all, 0.99),
		Max:            percentile(all, 1.00),
		Dispatched:     dispatched,
		MaxTardiness:   maxTar.String(),
		Backpressure:   backpressure.Load(),
		ResizeRejected: resizeRejected.Load(),
	}
	if fo != nil {
		fo.stop(&rep, fanWall)
	}
	if err := addServerStats(ctx, c, &rep); err != nil {
		return report{}, fmt.Errorf("server-side metrics: %w", err)
	}
	fmt.Fprintf(out, "tenants            : %d × %d tasks, %d jobs/task, %d workers\n",
		cfg.tenants, cfg.tasks, cfg.jobs, cfg.workers)
	fmt.Fprintf(out, "seed               : %d (worker pair shuffle)\n", cfg.seed)
	fmt.Fprintf(out, "requests           : %d total (%d timed)\n", rep.Requests, len(all))
	fmt.Fprintf(out, "wall / throughput  : %v / %.0f req/s\n", rep.Wall.Round(time.Millisecond), rep.Throughput)
	fmt.Fprintf(out, "latency p50/p90/p99: %v / %v / %v (max %v)\n", rep.P50, rep.P90, rep.P99, rep.Max)
	fmt.Fprintf(out, "server ack p50/p90/p99: %v / %v / %v (%d acks, ±bucket width)\n",
		rep.SrvP50, rep.SrvP90, rep.SrvP99, rep.SrvCount)
	fmt.Fprintf(out, "backpressure       : %d × 429 (submit ring full; retried)\n", rep.Backpressure)
	fmt.Fprintf(out, "resize-rejected    : %d × 409 (capacity withdrawn mid-run; skipped)\n", rep.ResizeRejected)
	fmt.Fprintf(out, "tenant m           : %s\n", formatTenantM(rep.TenantM))
	if cfg.streams > 0 {
		fmt.Fprintf(out, "streams            : %d/tenant, %d frames (%.0f frames/s), %d evicted+reopened\n",
			cfg.streams, rep.StreamFrames, rep.StreamRate, rep.StreamReopens)
		fmt.Fprintf(out, "stream lag p50/p90/p99: %d / %d / %d records (max %d)\n",
			rep.StreamLagP50, rep.StreamLagP90, rep.StreamLagP99, rep.StreamLagMax)
	}
	fmt.Fprintf(out, "dispatches         : %d, max tardiness %s (bound: 1)\n", rep.Dispatched, rep.MaxTardiness)
	return rep, nil
}

// percentileI64 returns the q-quantile of sorted int64 samples.
func percentileI64(sorted []int64, q float64) int64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q*float64(len(sorted))+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// formatTenantM renders the per-tenant M gauges as "id=m id=m …",
// sorted by tenant id so runs diff cleanly.
func formatTenantM(m map[string]int) string {
	if len(m) == 0 {
		return "(none)"
	}
	ids := make([]string, 0, len(m))
	for id := range m {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	parts := make([]string, len(ids))
	for i, id := range ids {
		parts[i] = fmt.Sprintf("%s=%d", id, m[id])
	}
	return strings.Join(parts, " ")
}

// runScenario drives a declarative scenario spec through the server: the
// generated cohorts become tenants, the sampled arrivals become submits,
// and the scenario report (per-class tardiness, Jain index) replaces the
// latency summary. The Theorem 3 exit gate in main still applies — a spec
// admits by construction, so the bound must hold.
func runScenario(ctx context.Context, cfg config, c *client.Client, out io.Writer) (report, error) {
	data, err := os.ReadFile(cfg.scenario)
	if err != nil {
		return report{}, err
	}
	spec, err := scenario.ParseSpec(data)
	if err != nil {
		return report{}, err
	}
	if cfg.seedSet {
		spec.Seed = cfg.seed
	}
	w, err := scenario.Generate(spec)
	if err != nil {
		return report{}, err
	}
	res, err := scenario.Run(w, &scenario.HTTPTarget{Ctx: ctx, C: c})
	if err != nil {
		return report{}, err
	}
	res.Report.WriteText(out)
	return report{
		Dispatched:   res.Report.Dispatches,
		MaxTardiness: res.Report.MaxTardiness.String(),
	}, nil
}

// addServerStats scrapes /metrics once and fills the server-side report
// fields: the SrvP* percentiles from the aggregate submit→ack histogram
// (the handler timing itself from inside — the gap to the client
// percentiles is network plus scheduling overhead the server cannot see)
// and TenantM from the pfaird_tenant_m gauges, the measured per-tenant
// capacity after any resizes landed during the run.
func addServerStats(ctx context.Context, c *client.Client, rep *report) error {
	text, err := c.Metrics(ctx)
	if err != nil {
		return err
	}
	ex, err := obs.ParseExposition(text)
	if err != nil {
		return err
	}
	if f := ex.Family("pfaird_tenant_m"); f != nil {
		rep.TenantM = make(map[string]int, len(f.Samples))
		for _, s := range f.Samples {
			rep.TenantM[s.Label("tenant")] = int(s.Value)
		}
	}
	snap, err := ex.Histogram("pfaird_submit_ack_seconds", nil)
	if err != nil {
		return err
	}
	rep.SrvCount = snap.Count
	if snap.Count == 0 {
		return nil
	}
	toDur := func(q float64) time.Duration {
		return time.Duration(snap.Quantile(q) * float64(time.Second)).Round(time.Microsecond)
	}
	rep.SrvP50, rep.SrvP90, rep.SrvP99 = toDur(0.50), toDur(0.90), toDur(0.99)
	return nil
}

// percentile returns the q-quantile of sorted latencies (q in (0, 1]).
func percentile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q*float64(len(sorted))+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

func tenantID(i int) string { return fmt.Sprintf("load-%d", i) }
func taskID(k int) string   { return fmt.Sprintf("t%d", k) }
