package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"desyncpfair/internal/scenario"
)

func writeSpec(t *testing.T, dir string) string {
	t.Helper()
	spec := &scenario.Spec{
		Name: "cli", Seed: 11, M: 2, Horizon: 24,
		Classes: []scenario.ClassSpec{{Name: "gold", MaxTardiness: "0"}},
		Cohorts: []scenario.CohortSpec{{
			Name: "web", Clients: 2, Class: "gold",
			Tasks:   []scenario.TaskSpec{{Name: "a", E: 1, P: 4}},
			Arrival: scenario.ArrivalSpec{Process: scenario.ProcPoisson, Mean: "5"},
		}},
	}
	data, err := scenario.EncodeSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "spec.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunRecordReplayCounterfactual(t *testing.T) {
	dir := t.TempDir()
	spec := writeSpec(t, dir)
	trace := filepath.Join(dir, "run.trace")
	metrics := filepath.Join(dir, "metrics.prom")

	var out bytes.Buffer
	err := run(config{spec: spec, record: trace, metricsOut: metrics, counterfactual: "EPDF,PF"}, &out)
	if err != nil {
		t.Fatalf("record run: %v\n%s", err, out.String())
	}
	for _, want := range []string{"scenario    cli", "jain index", "class gold", "counterfactual EPDF", "counterfactual PF"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("output missing %q:\n%s", want, out.String())
		}
	}
	mdata, err := os.ReadFile(metrics)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(mdata), "scenario_tardiness_quanta_bucket") {
		t.Fatalf("metrics file lacks the tardiness histogram:\n%s", mdata)
	}

	// Record again: the trace must be byte-identical run to run.
	trace2 := filepath.Join(dir, "run2.trace")
	var out2 bytes.Buffer
	if err := run(config{spec: spec, record: trace2}, &out2); err != nil {
		t.Fatal(err)
	}
	a, err := os.ReadFile(trace)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(trace2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("re-recorded trace differs: %d vs %d bytes", len(a), len(b))
	}

	// Replay the recording; it must verify and reproduce the report.
	var rout bytes.Buffer
	if err := run(config{replay: trace}, &rout); err != nil {
		t.Fatalf("replay: %v\n%s", err, rout.String())
	}
	if !strings.Contains(rout.String(), "verified: dispatch sequence identical") {
		t.Fatalf("replay did not report verification:\n%s", rout.String())
	}

	// A different -seed must change the trace (the flag overrides the spec).
	trace3 := filepath.Join(dir, "run3.trace")
	var out3 bytes.Buffer
	if err := run(config{spec: spec, seed: 99, seedSet: true, record: trace3}, &out3); err != nil {
		t.Fatal(err)
	}
	c, err := os.ReadFile(trace3)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(a, c) {
		t.Fatal("-seed override produced an identical trace")
	}
}

func TestRunSweepM(t *testing.T) {
	dir := t.TempDir()
	spec := writeSpec(t, dir)
	trace := filepath.Join(dir, "run.trace")

	var out bytes.Buffer
	if err := run(config{spec: spec, record: trace}, &out); err != nil {
		t.Fatalf("record run: %v\n%s", err, out.String())
	}

	// Sweep the recorded trace over 1:3 under two policies. The spec's
	// heaviest client has Σwt = 1/4, so every swept M is feasible and
	// both sweeps must report M=1 as the minimal feasible capacity.
	var sout bytes.Buffer
	if err := run(config{replay: trace, sweepM: "1:3", counterfactual: "EPDF,PD2"}, &sout); err != nil {
		t.Fatalf("sweep run: %v\n%s", err, sout.String())
	}
	for _, want := range []string{
		"sweep-m EPDF",
		"sweep-m PD2",
		"minimal feasible M=1",
		"M=3",
	} {
		if !strings.Contains(sout.String(), want) {
			t.Fatalf("sweep output missing %q:\n%s", want, sout.String())
		}
	}
	// With -sweep-m the counterfactual list feeds the sweep, not the
	// decision diff — the diff output must not appear.
	if strings.Contains(sout.String(), "counterfactual EPDF") {
		t.Fatalf("sweep run also printed counterfactual diffs:\n%s", sout.String())
	}

	// Bad ranges are errors, not silent no-ops.
	var eout bytes.Buffer
	if err := run(config{replay: trace, sweepM: "3:1"}, &eout); err == nil {
		t.Fatal("inverted sweep range accepted")
	}
	if err := run(config{replay: trace, sweepM: "x"}, &eout); err == nil {
		t.Fatal("non-numeric sweep range accepted")
	}
}

func TestRunFlagValidation(t *testing.T) {
	var out bytes.Buffer
	if err := run(config{}, &out); err == nil {
		t.Fatal("no -spec/-replay accepted")
	}
	if err := run(config{spec: "a", replay: "b"}, &out); err == nil {
		t.Fatal("-spec with -replay accepted")
	}
	if err := run(config{spec: filepath.Join(t.TempDir(), "missing.json")}, &out); err == nil {
		t.Fatal("missing spec file accepted")
	}
}
