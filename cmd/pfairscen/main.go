// Command pfairscen runs declarative scenarios: a JSON spec describing
// client cohorts (arrival processes, on/off bursts, diurnal phases, SLO
// classes) is expanded by a seeded deterministic generator, executed
// against the in-process executive (or a live pfaird with -addr), and
// summarized as per-class tardiness plus a Jain fairness index. Every run
// can be recorded as a CRC-framed NDJSON trace; a recorded trace can be
// replayed bit-identically (-replay verifies the dispatch sequence
// matches) and re-dispatched under alternate priority policies
// (-counterfactual) with a quantum-by-quantum decision diff.
//
// Usage:
//
// A capacity sweep (-sweep-m lo:hi) re-dispatches the same workload at
// every processor count in the range and reports, per policy, the minimal
// M that admits it and the minimal M that also keeps tardiness within the
// one-quantum bound — for PD² the two coincide (Theorem 3); for the
// heuristics the gap is the capacity price of the simpler policy.
//
//	pfairscen -spec scenario.json -record run.trace
//	pfairscen -replay run.trace -counterfactual EPDF,PF
//	pfairscen -replay run.trace -counterfactual EPDF,PD2 -sweep-m 1:8
//	pfairscen -spec scenario.json -addr http://localhost:8080
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"desyncpfair/internal/client"
	"desyncpfair/internal/scenario"
)

type config struct {
	spec           string // scenario spec path (JSON)
	replay         string // recorded trace path to replay instead of -spec
	record         string // write the run's trace here
	counterfactual string // comma-separated policies to re-dispatch under
	addr           string // live pfaird base URL; empty = in-process executive
	seed           int64  // overrides the spec's seed when set
	seedSet        bool
	metricsOut     string // write Prometheus exposition here ("-" = stdout)
	sweepM         string // "lo:hi" capacity sweep range
}

func main() {
	cfg := config{}
	flag.StringVar(&cfg.spec, "spec", "", "scenario spec (JSON) to generate and run")
	flag.StringVar(&cfg.replay, "replay", "", "recorded trace to replay (verifies the dispatch sequence) instead of -spec")
	flag.StringVar(&cfg.record, "record", "", "record the run as a CRC-framed NDJSON trace at this path")
	flag.StringVar(&cfg.counterfactual, "counterfactual", "", "comma-separated policies (EPDF, PF, PD, PD2) to re-dispatch the workload under and diff")
	flag.StringVar(&cfg.addr, "addr", "", "pfaird base URL (empty: run against the in-process executive)")
	flag.Int64Var(&cfg.seed, "seed", 0, "override the spec's seed")
	flag.StringVar(&cfg.metricsOut, "metrics-out", "", "write the report as a Prometheus exposition to this path (\"-\" = stdout)")
	flag.StringVar(&cfg.sweepM, "sweep-m", "", "re-dispatch the workload at every M in lo:hi and report the minimal M per policy (policies from -counterfactual, else the run's own)")
	flag.Parse()
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "seed" {
			cfg.seedSet = true
		}
	})

	if err := run(cfg, os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "pfairscen: %v\n", err)
		os.Exit(1)
	}
}

func run(cfg config, out io.Writer) error {
	res, err := produce(cfg, out)
	if err != nil {
		return err
	}
	res.Report.WriteText(out)
	if cfg.record != "" {
		data, err := scenario.EncodeTrace(res.Records)
		if err != nil {
			return err
		}
		if err := os.WriteFile(cfg.record, data, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(out, "trace       %s (%d records, %d bytes)\n", cfg.record, len(res.Records), len(data))
	}
	if cfg.metricsOut != "" {
		if err := writeMetrics(cfg.metricsOut, res.Report, out); err != nil {
			return err
		}
	}
	if cfg.counterfactual != "" && cfg.sweepM == "" {
		if err := runCounterfactuals(cfg.counterfactual, res.Records, out); err != nil {
			return err
		}
	}
	if cfg.sweepM != "" {
		if err := runSweeps(cfg, res, out); err != nil {
			return err
		}
	}
	return nil
}

// runSweeps evaluates each requested policy at every M in the -sweep-m
// range, printing the minimal feasible M and the minimal M that also
// meets the one-quantum tardiness bound. With -counterfactual the sweep
// covers those policies; otherwise the run's own policy.
func runSweeps(cfg config, res *scenario.Result, out io.Writer) error {
	lo, hi, err := parseSweepRange(cfg.sweepM)
	if err != nil {
		return err
	}
	policies := []string{res.Report.Policy}
	if cfg.counterfactual != "" {
		policies = policies[:0]
		for _, p := range strings.Split(cfg.counterfactual, ",") {
			if p = strings.TrimSpace(p); p != "" {
				policies = append(policies, p)
			}
		}
	}
	for _, p := range policies {
		sw, err := scenario.SweepM(res.Records, p, lo, hi)
		if err != nil {
			return err
		}
		feas, bound := "none in range", "none in range"
		if sw.MinFeasibleM > 0 {
			feas = fmt.Sprintf("M=%d", sw.MinFeasibleM)
		}
		if sw.MinBoundM > 0 {
			bound = fmt.Sprintf("M=%d", sw.MinBoundM)
		}
		fmt.Fprintf(out, "sweep-m %-5s %d:%d  minimal feasible %s, minimal 1-quantum %s\n",
			sw.Policy, lo, hi, feas, bound)
		for _, pt := range sw.Points {
			if !pt.Feasible {
				fmt.Fprintf(out, "  M=%-3d infeasible\n", pt.M)
				continue
			}
			mark := " "
			if pt.MeetsBound {
				mark = "*"
			}
			fmt.Fprintf(out, "  M=%-3d max tard %-8s violations %-6d %s\n",
				pt.M, pt.MaxTardiness, pt.Violations, mark)
		}
	}
	return nil
}

// parseSweepRange parses "lo:hi" (or a single "m").
func parseSweepRange(s string) (lo, hi int, err error) {
	los, his, found := strings.Cut(s, ":")
	if !found {
		his = los
	}
	if lo, err = strconv.Atoi(strings.TrimSpace(los)); err != nil {
		return 0, 0, fmt.Errorf("bad -sweep-m %q: %v", s, err)
	}
	if hi, err = strconv.Atoi(strings.TrimSpace(his)); err != nil {
		return 0, 0, fmt.Errorf("bad -sweep-m %q: %v", s, err)
	}
	return lo, hi, nil
}

// produce yields the run's result: a replayed trace, or a fresh run of a
// spec against the chosen target.
func produce(cfg config, out io.Writer) (*scenario.Result, error) {
	switch {
	case cfg.replay != "" && cfg.spec != "":
		return nil, fmt.Errorf("-spec and -replay are mutually exclusive")
	case cfg.replay != "":
		f, err := os.Open(cfg.replay)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		recs, err := scenario.ReadTrace(f)
		if err != nil {
			return nil, err
		}
		res, err := scenario.Replay(recs)
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(out, "replay      %s verified: dispatch sequence identical\n", cfg.replay)
		return res, nil
	case cfg.spec != "":
		data, err := os.ReadFile(cfg.spec)
		if err != nil {
			return nil, err
		}
		spec, err := scenario.ParseSpec(data)
		if err != nil {
			return nil, err
		}
		if cfg.seedSet {
			spec.Seed = cfg.seed
		}
		w, err := scenario.Generate(spec)
		if err != nil {
			return nil, err
		}
		return scenario.Run(w, target(cfg))
	default:
		return nil, fmt.Errorf("one of -spec or -replay is required")
	}
}

func target(cfg config) scenario.Target {
	if cfg.addr == "" {
		return scenario.NewExecTarget()
	}
	return &scenario.HTTPTarget{
		Ctx: context.Background(),
		C:   client.New(cfg.addr, &http.Client{Timeout: 30 * time.Second}),
	}
}

func writeMetrics(path string, rep *scenario.Report, out io.Writer) error {
	if path == "-" {
		rep.WriteMetrics(out)
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	rep.WriteMetrics(f)
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(out, "metrics     %s\n", path)
	return nil
}

// runCounterfactuals re-dispatches the recorded workload under each named
// policy and prints where (which quanta) the decisions diverged.
func runCounterfactuals(policies string, recs []scenario.Record, out io.Writer) error {
	for _, p := range strings.Split(policies, ",") {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		cf, err := scenario.Rerun(recs, p)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "counterfactual %-5s max tard %s quanta, jain %.6f, %d quanta differ\n",
			cf.Policy, cf.Result.Report.MaxTardiness, cf.Result.Report.Jain, len(cf.Diffs))
		for i, d := range cf.Diffs {
			if i == 8 {
				fmt.Fprintf(out, "  … %d more differing quanta\n", len(cf.Diffs)-i)
				break
			}
			fmt.Fprintf(out, "  quantum %-5d recorded-only %v, %s-only %v\n", d.Slot, d.OnlyRecorded, cf.Policy, d.OnlyRerun)
		}
	}
	return nil
}
