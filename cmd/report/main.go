// Command report generates a single self-contained HTML reproduction
// report: every figure (ASCII + interactive Gantt charts with exact
// rational positioning) and every experiment table, ready to attach to a
// paper-reproduction artifact.
//
// Usage: report [-trials N] [-seed S] [-o report.html]
package main

import (
	"flag"
	"fmt"
	"html/template"
	"os"
	"strings"
	"time"

	"desyncpfair/internal/core"
	"desyncpfair/internal/exp"
	"desyncpfair/internal/rat"
	"desyncpfair/internal/sched"
	"desyncpfair/internal/sfq"
	"desyncpfair/internal/trace"
)

type section struct {
	Title  string
	Pre    string // preformatted text (tables, ASCII diagrams)
	Charts []template.HTML
}

type page struct {
	Generated string
	CSS       template.CSS
	Sections  []section
}

func main() {
	trials := flag.Int("trials", 10, "trials per experiment cell")
	seed := flag.Int64("seed", 1, "base RNG seed")
	out := flag.String("o", "report.html", "output file")
	flag.Parse()
	if err := run(*trials, *seed, *out); err != nil {
		fmt.Fprintln(os.Stderr, "report:", err)
		os.Exit(1)
	}
}

func run(trials int, seed int64, out string) error {
	var sections []section

	// --- Figures -----------------------------------------------------------
	sections = append(sections, section{Title: "Fig. 1 — Pfair windows", Pre: exp.Fig1()})

	fig2, err := fig2Section()
	if err != nil {
		return err
	}
	sections = append(sections, fig2)

	fig3Text, _, err := exp.Fig3()
	if err != nil {
		return err
	}
	fig3Charts, err := charts(func() (*sched.Schedule, error) {
		return core.RunDVQ(exp.Fig3System(5), core.DVQOptions{M: 3, Yield: exp.Fig3Yield(rat.New(1, 4))})
	})
	if err != nil {
		return err
	}
	sections = append(sections, section{
		Title: "Fig. 3 — predecessor blocking (reconstruction)", Pre: fig3Text, Charts: fig3Charts,
	})

	fig4, err := exp.Fig4()
	if err != nil {
		return err
	}
	sections = append(sections, section{Title: "Fig. 4 — Aligned/Olapped/Free and S_B", Pre: fig4})

	fig6, err := exp.Fig6()
	if err != nil {
		return err
	}
	sections = append(sections, section{Title: "Fig. 6 — PD^B and k-compliance", Pre: fig6})

	// --- Experiments ---------------------------------------------------------
	expText, err := experimentTables(trials, seed)
	if err != nil {
		return err
	}
	sections = append(sections, section{Title: "Experiments E1–E17 (summary subset)", Pre: expText})

	f, err := os.Create(out)
	if err != nil {
		return err
	}
	defer f.Close()
	err = reportTmpl.Execute(f, page{
		Generated: time.Now().Format(time.RFC3339),
		CSS:       template.CSS(trace.GanttCSS),
		Sections:  sections,
	})
	if err == nil {
		fmt.Printf("report written to %s (%d sections)\n", out, len(sections))
	}
	return err
}

func fig2Section() (section, error) {
	text, err := exp.Fig2()
	if err != nil {
		return section{}, err
	}
	var chartList []template.HTML
	sfqSched, err := sfq.Run(exp.Fig2System(), sfq.Options{M: 2})
	if err != nil {
		return section{}, err
	}
	dvq, err := core.RunDVQ(exp.Fig2System(), core.DVQOptions{M: 2, Yield: exp.Fig2Yield(rat.New(1, 4))})
	if err != nil {
		return section{}, err
	}
	pdb, err := core.RunPDB(exp.Fig2System(), core.PDBOptions{M: 2})
	if err != nil {
		return section{}, err
	}
	for _, s := range []*sched.Schedule{sfqSched, dvq, pdb.Schedule} {
		frag, err := trace.HTMLFragment(s)
		if err != nil {
			return section{}, err
		}
		chartList = append(chartList, frag)
	}
	return section{Title: "Fig. 2 — SFQ vs DVQ vs PD^B", Pre: text, Charts: chartList}, nil
}

func charts(runs ...func() (*sched.Schedule, error)) ([]template.HTML, error) {
	var out []template.HTML
	for _, run := range runs {
		s, err := run()
		if err != nil {
			return nil, err
		}
		frag, err := trace.HTMLFragment(s)
		if err != nil {
			return nil, err
		}
		out = append(out, frag)
	}
	return out, nil
}

// experimentTables renders a representative subset of the E-suite (the
// fast ones; the full suite is cmd/experiments).
func experimentTables(trials int, seed int64) (string, error) {
	var b strings.Builder

	e1, err := exp.E1Tightness(exp.DefaultDeltas())
	if err != nil {
		return "", err
	}
	b.WriteString("E1  tightness: max tardiness = 1−δ\n")
	for _, p := range e1 {
		fmt.Fprintf(&b, "  δ=%-8s → %s\n", p.Delta, p.MaxTardiness)
	}

	e2, err := exp.E2DVQTardiness(seed, trials, []int{2, 4})
	if err != nil {
		return "", err
	}
	b.WriteString("\nE2  Theorem 3 at scale\n")
	for _, p := range e2 {
		fmt.Fprintf(&b, "  M=%d %-12s subtasks=%-6d misses=%-4d max=%-8s holds=%v\n",
			p.M, p.YieldModel, p.Subtasks, p.Misses, p.MaxTardiness, p.BoundHolds)
	}

	e4, err := exp.E4PDBTardiness(seed, trials, []int{2, 4})
	if err != nil {
		return "", err
	}
	b.WriteString("\nE4  Theorem 2 at scale\n")
	for _, p := range e4 {
		fmt.Fprintf(&b, "  M=%d %-12s subtasks=%-6d misses=%-4d max=%-8s holds=%v\n",
			p.M, p.YieldModel, p.Subtasks, p.Misses, p.MaxTardiness, p.BoundHolds)
	}

	e15, err := exp.E15ClockDrift(seed, trials, 2)
	if err != nil {
		return "", err
	}
	b.WriteString("\nE15 clock drift: drifting SFQ vs DVQ\n")
	for _, p := range e15 {
		eps := "0"
		if p.EpsDen > 0 {
			eps = fmt.Sprintf("1/%d", p.EpsDen)
		}
		fmt.Fprintf(&b, "  ε=%-6s tard(H)=%-8s tard(4H)=%-8s tardDVQ=%s\n",
			eps, p.TardShort, p.TardLong, p.TardDVQ)
	}
	return b.String(), nil
}

var reportTmpl = template.Must(template.New("report").Parse(`<!DOCTYPE html>
<html><head><meta charset="utf-8">
<title>desyncpfair — reproduction report</title>
<style>{{.CSS}}</style></head><body>
<h1>desyncpfair — reproduction report</h1>
<div class="meta">Devi &amp; Anderson, “Desynchronized Pfair Scheduling on
Multiprocessors” (IPPS 2005). Generated {{.Generated}}.</div>
{{range .Sections}}
<h2>{{.Title}}</h2>
{{range .Charts}}{{.}}{{end}}
<pre>{{.Pre}}</pre>
{{end}}
</body></html>
`))
