package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestReportEndToEnd(t *testing.T) {
	out := filepath.Join(t.TempDir(), "report.html")
	if err := run(3, 1, out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	html := string(data)
	for _, want := range []string{
		"<!DOCTYPE html>", "reproduction report",
		"Fig. 1", "Fig. 2", "Fig. 3", "Fig. 4", "Fig. 6",
		"E1", "E15", "class=\"block", "tardy",
	} {
		if !strings.Contains(html, want) {
			t.Errorf("report missing %q", want)
		}
	}
	if err := run(3, 1, "/nonexistent-dir/x.html"); err == nil {
		t.Error("unwritable output accepted")
	}
}
