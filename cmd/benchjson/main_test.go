package main

import (
	"bufio"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: desyncpfair
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkDVQLarge-8   	     100	  11234567 ns/op	 2048000 B/op	   12345 allocs/op
BenchmarkSFQLarge-8   	      50	  22345678 ns/op
PASS
ok  	desyncpfair	1.234s
pkg: desyncpfair/internal/server
BenchmarkServerSubmit 	    2000	     44228 ns/op	   10635 B/op	     124 allocs/op
PASS
ok  	desyncpfair/internal/server	0.098s
`

func TestParse(t *testing.T) {
	out, err := parse(bufio.NewScanner(strings.NewReader(sample)))
	if err != nil {
		t.Fatal(err)
	}
	if out.GoOS != "linux" || out.GoArch != "amd64" || !strings.Contains(out.CPU, "Xeon") {
		t.Errorf("header: %+v", out)
	}
	if len(out.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(out.Benchmarks))
	}
	dvq := out.Benchmarks[0]
	if dvq.Name != "DVQLarge" || dvq.Procs != 8 || dvq.Pkg != "desyncpfair" {
		t.Errorf("first benchmark: %+v", dvq)
	}
	if dvq.Iterations != 100 || dvq.NsPerOp != 11234567 {
		t.Errorf("first benchmark numbers: %+v", dvq)
	}
	if dvq.Metrics["B/op"] != 2048000 || dvq.Metrics["allocs/op"] != 12345 {
		t.Errorf("first benchmark metrics: %+v", dvq.Metrics)
	}
	if sfq := out.Benchmarks[1]; sfq.Name != "SFQLarge" || sfq.Metrics != nil {
		t.Errorf("second benchmark: %+v", sfq)
	}
	srv := out.Benchmarks[2]
	if srv.Name != "ServerSubmit" || srv.Pkg != "desyncpfair/internal/server" || srv.Procs != 0 {
		t.Errorf("third benchmark: %+v", srv)
	}
}

// TestParseCollapsesRepeatedRuns pins the -count=N handling: repeated
// lines for the same benchmark keep only the fastest run, and a
// same-named benchmark in a different package or at different GOMAXPROCS
// stays separate.
func TestParseCollapsesRepeatedRuns(t *testing.T) {
	const repeated = `pkg: p
BenchmarkHot-8   	     100	  2000 ns/op	  64 B/op	  2 allocs/op
BenchmarkHot-8   	     100	  1500 ns/op	  48 B/op	  1 allocs/op
BenchmarkHot-8   	     100	  1800 ns/op	  64 B/op	  2 allocs/op
BenchmarkHot-4   	     100	  3000 ns/op
pkg: q
BenchmarkHot-8   	     100	  9000 ns/op
`
	out, err := parse(bufio.NewScanner(strings.NewReader(repeated)))
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3 (min-collapsed):\n%+v", len(out.Benchmarks), out.Benchmarks)
	}
	hot := out.Benchmarks[0]
	if hot.NsPerOp != 1500 {
		t.Errorf("collapsed ns/op = %v, want the 1500 minimum", hot.NsPerOp)
	}
	// The whole fastest record wins, not a field-wise mix.
	if hot.Metrics["allocs/op"] != 1 || hot.Metrics["B/op"] != 48 {
		t.Errorf("collapsed metrics %+v, want the fastest run's", hot.Metrics)
	}
	if out.Benchmarks[1].Procs != 4 || out.Benchmarks[2].Pkg != "q" {
		t.Errorf("distinct procs/pkg collapsed: %+v", out.Benchmarks)
	}
}

func TestParseBenchRejectsNonResultLines(t *testing.T) {
	for _, line := range []string{
		"BenchmarkFoo", // bare name, no iteration count
		"BenchmarkFoo	abc	123 ns/op",
		"Benchmarking the thing took a while",
	} {
		if b, ok := parseBench(line); ok {
			t.Errorf("parseBench(%q) accepted: %+v", line, b)
		}
	}
}

// writeDoc marshals a document to a temp file for diff tests.
func writeDoc(t *testing.T, dir, name string, doc Output) string {
	t.Helper()
	raw, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestDiffTableAndThreshold(t *testing.T) {
	dir := t.TempDir()
	oldPath := writeDoc(t, dir, "old.json", Output{Benchmarks: []Benchmark{
		{Name: "Steady", Pkg: "p", Procs: 8, NsPerOp: 1000, Metrics: map[string]float64{"allocs/op": 10}},
		{Name: "Faster", Pkg: "p", Procs: 8, NsPerOp: 1000},
		{Name: "Gone", Pkg: "p", Procs: 8, NsPerOp: 500},
	}})
	newPath := writeDoc(t, dir, "new.json", Output{Benchmarks: []Benchmark{
		{Name: "Steady", Pkg: "p", Procs: 8, NsPerOp: 1100, Metrics: map[string]float64{"allocs/op": 9}},
		{Name: "Faster", Pkg: "p", Procs: 8, NsPerOp: 400},
		{Name: "New", Pkg: "p", Procs: 8, NsPerOp: 700},
	}})

	// +10% on Steady is inside the 20% default; -60% on Faster is a win;
	// Gone/New never gate.
	var out strings.Builder
	regressed, err := diff(&out, oldPath, newPath, 20)
	if err != nil {
		t.Fatal(err)
	}
	if regressed {
		t.Fatalf("diff flagged a regression within threshold:\n%s", out.String())
	}
	for _, want := range []string{"p.Steady", "+10.0%", "-10.0%", "(gone)", "(new)", "-60.0%"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("diff table missing %q:\n%s", want, out.String())
		}
	}

	// Tighten the threshold below the +10% drift: now it must gate.
	out.Reset()
	regressed, err = diff(&out, oldPath, newPath, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !regressed {
		t.Fatalf("diff missed a 10%% regression at threshold 5:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "REGRESSION") {
		t.Errorf("regressed row not marked:\n%s", out.String())
	}
}

// TestDiffIdenticalIsClean pins the gate used by `make bench-diff`: a file
// diffed against itself reports nothing.
func TestDiffIdenticalIsClean(t *testing.T) {
	dir := t.TempDir()
	path := writeDoc(t, dir, "same.json", Output{Benchmarks: []Benchmark{
		{Name: "A", Pkg: "p", Procs: 4, NsPerOp: 123},
	}})
	var out strings.Builder
	regressed, err := diff(&out, path, path, 20)
	if err != nil || regressed {
		t.Fatalf("self-diff regressed=%v err=%v:\n%s", regressed, err, out.String())
	}
}
