package main

import (
	"bufio"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: desyncpfair
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkDVQLarge-8   	     100	  11234567 ns/op	 2048000 B/op	   12345 allocs/op
BenchmarkSFQLarge-8   	      50	  22345678 ns/op
PASS
ok  	desyncpfair	1.234s
pkg: desyncpfair/internal/server
BenchmarkServerSubmit 	    2000	     44228 ns/op	   10635 B/op	     124 allocs/op
PASS
ok  	desyncpfair/internal/server	0.098s
`

func TestParse(t *testing.T) {
	out, err := parse(bufio.NewScanner(strings.NewReader(sample)))
	if err != nil {
		t.Fatal(err)
	}
	if out.GoOS != "linux" || out.GoArch != "amd64" || !strings.Contains(out.CPU, "Xeon") {
		t.Errorf("header: %+v", out)
	}
	if len(out.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(out.Benchmarks))
	}
	dvq := out.Benchmarks[0]
	if dvq.Name != "DVQLarge" || dvq.Procs != 8 || dvq.Pkg != "desyncpfair" {
		t.Errorf("first benchmark: %+v", dvq)
	}
	if dvq.Iterations != 100 || dvq.NsPerOp != 11234567 {
		t.Errorf("first benchmark numbers: %+v", dvq)
	}
	if dvq.Metrics["B/op"] != 2048000 || dvq.Metrics["allocs/op"] != 12345 {
		t.Errorf("first benchmark metrics: %+v", dvq.Metrics)
	}
	if sfq := out.Benchmarks[1]; sfq.Name != "SFQLarge" || sfq.Metrics != nil {
		t.Errorf("second benchmark: %+v", sfq)
	}
	srv := out.Benchmarks[2]
	if srv.Name != "ServerSubmit" || srv.Pkg != "desyncpfair/internal/server" || srv.Procs != 0 {
		t.Errorf("third benchmark: %+v", srv)
	}
}

func TestParseBenchRejectsNonResultLines(t *testing.T) {
	for _, line := range []string{
		"BenchmarkFoo", // bare name, no iteration count
		"BenchmarkFoo	abc	123 ns/op",
		"Benchmarking the thing took a while",
	} {
		if b, ok := parseBench(line); ok {
			t.Errorf("parseBench(%q) accepted: %+v", line, b)
		}
	}
}
