// Command benchjson converts `go test -bench` text output on stdin into
// machine-readable JSON on stdout, so benchmark results can be archived
// and diffed across PRs (BENCH_2.json in the repo root; see `make
// bench-json`). It understands the standard benchmark line format
//
//	BenchmarkName-8   	     100	  11234 ns/op	  2048 B/op	  12 allocs/op
//
// plus the goos/goarch/pkg/cpu header lines, and tolerates interleaved
// non-benchmark output (PASS, ok, test logs), which it ignores.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one parsed benchmark result.
type Benchmark struct {
	Name       string             `json:"name"`
	Pkg        string             `json:"pkg,omitempty"`
	Procs      int                `json:"procs,omitempty"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op,omitempty"`
	Metrics    map[string]float64 `json:"metrics,omitempty"` // unit → value, e.g. "B/op", "allocs/op"
}

// Output is the whole document.
type Output struct {
	GoOS       string      `json:"goos,omitempty"`
	GoArch     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	out, err := parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	if len(out.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}

func parse(sc *bufio.Scanner) (Output, error) {
	var out Output
	pkg := ""
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos: "):
			out.GoOS = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			out.GoArch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			out.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "Benchmark"):
			if b, ok := parseBench(line); ok {
				b.Pkg = pkg
				out.Benchmarks = append(out.Benchmarks, b)
			}
		}
	}
	return out, sc.Err()
}

// parseBench parses one result line; ok is false for lines that merely
// start with "Benchmark" (e.g. a benchmark's own log output).
func parseBench(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return Benchmark{}, false
	}
	b := Benchmark{Name: fields[0], Metrics: map[string]float64{}}
	if i := strings.LastIndex(b.Name, "-"); i > 0 {
		if procs, err := strconv.Atoi(b.Name[i+1:]); err == nil {
			b.Procs = procs
			b.Name = b.Name[:i]
		}
	}
	b.Name = strings.TrimPrefix(b.Name, "Benchmark")
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b.Iterations = iters
	// Remaining fields come in (value, unit) pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		unit := fields[i+1]
		if unit == "ns/op" {
			b.NsPerOp = v
		} else {
			b.Metrics[unit] = v
		}
	}
	if len(b.Metrics) == 0 {
		b.Metrics = nil
	}
	return b, true
}
