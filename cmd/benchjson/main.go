// Command benchjson converts `go test -bench` text output on stdin into
// machine-readable JSON on stdout, so benchmark results can be archived
// and diffed across PRs (BENCH_2.json in the repo root; see `make
// bench-json`). It understands the standard benchmark line format
//
//	BenchmarkName-8   	     100	  11234 ns/op	  2048 B/op	  12 allocs/op
//
// plus the goos/goarch/pkg/cpu header lines, and tolerates interleaved
// non-benchmark output (PASS, ok, test logs), which it ignores. Repeated
// runs of the same benchmark (`go test -count=N`) are collapsed to the
// fastest run — the minimum is the noise-robust estimator of a
// benchmark's true cost, since interference only ever adds time.
//
// Compare mode diffs two archived documents:
//
//	benchjson -diff BENCH_4.json BENCH_5.json [-threshold 20]
//
// prints a per-benchmark delta table (ns/op and allocs/op) for the
// benchmarks present in both files and exits 1 if any shared benchmark
// regressed by more than the threshold percentage — `make bench-diff`
// gates on it.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Benchmark is one parsed benchmark result.
type Benchmark struct {
	Name       string             `json:"name"`
	Pkg        string             `json:"pkg,omitempty"`
	Procs      int                `json:"procs,omitempty"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op,omitempty"`
	Metrics    map[string]float64 `json:"metrics,omitempty"` // unit → value, e.g. "B/op", "allocs/op"
}

// Output is the whole document.
type Output struct {
	GoOS       string      `json:"goos,omitempty"`
	GoArch     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	diffMode := flag.Bool("diff", false, "compare two archived JSON documents: benchjson -diff OLD NEW")
	threshold := flag.Float64("threshold", 20, "with -diff: fail (exit 1) when ns/op regresses by more than this percentage")
	flag.Parse()

	if *diffMode {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "benchjson: -diff needs exactly two files: benchjson -diff OLD NEW")
			os.Exit(2)
		}
		regressed, err := diff(os.Stdout, flag.Arg(0), flag.Arg(1), *threshold)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(2)
		}
		if regressed {
			os.Exit(1)
		}
		return
	}

	out, err := parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	if len(out.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}

// benchKey identifies a benchmark across documents. Procs is part of the
// identity: the same benchmark at a different GOMAXPROCS is a different
// measurement.
func benchKey(b Benchmark) string {
	return fmt.Sprintf("%s\x00%s\x00%d", b.Pkg, b.Name, b.Procs)
}

func loadDoc(path string) (map[string]Benchmark, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc Output
	if err := json.Unmarshal(raw, &doc); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	m := make(map[string]Benchmark, len(doc.Benchmarks))
	for _, b := range doc.Benchmarks {
		m[benchKey(b)] = b
	}
	return m, nil
}

// diff prints the per-benchmark delta table and reports whether any
// benchmark shared by both documents regressed in ns/op by more than
// threshold percent. Benchmarks only in one document are listed as new or
// gone but never gate — a renamed benchmark must not fail the build.
func diff(w io.Writer, oldPath, newPath string, threshold float64) (bool, error) {
	oldDoc, err := loadDoc(oldPath)
	if err != nil {
		return false, err
	}
	newDoc, err := loadDoc(newPath)
	if err != nil {
		return false, err
	}
	keys := make([]string, 0, len(oldDoc)+len(newDoc))
	for k := range oldDoc {
		keys = append(keys, k)
	}
	for k := range newDoc {
		if _, ok := oldDoc[k]; !ok {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)

	pct := func(oldV, newV float64) float64 { return (newV - oldV) / oldV * 100 }
	regressed := false
	tw := func(format string, args ...any) { fmt.Fprintf(w, format, args...) }
	tw("%-60s %14s %14s %9s %12s\n", "benchmark", "old ns/op", "new ns/op", "Δns/op", "Δallocs/op")
	for _, k := range keys {
		ob, inOld := oldDoc[k]
		nb, inNew := newDoc[k]
		label := func(b Benchmark) string {
			name := b.Name
			if i := strings.LastIndex(b.Pkg, "/"); i >= 0 {
				name = b.Pkg[i+1:] + "." + name
			} else if b.Pkg != "" {
				name = b.Pkg + "." + name
			}
			return name
		}
		switch {
		case !inNew:
			tw("%-60s %14.0f %14s %9s %12s\n", label(ob), ob.NsPerOp, "(gone)", "", "")
		case !inOld:
			tw("%-60s %14s %14.0f %9s %12s\n", label(nb), "(new)", nb.NsPerOp, "", "")
		default:
			dns := pct(ob.NsPerOp, nb.NsPerOp)
			allocDelta := ""
			if oa, ok := ob.Metrics["allocs/op"]; ok {
				if na, ok := nb.Metrics["allocs/op"]; ok && oa > 0 {
					allocDelta = fmt.Sprintf("%+.1f%%", pct(oa, na))
				}
			}
			mark := ""
			if dns > threshold {
				mark = "  REGRESSION"
				regressed = true
			}
			tw("%-60s %14.0f %14.0f %+8.1f%% %12s%s\n", label(nb), ob.NsPerOp, nb.NsPerOp, dns, allocDelta, mark)
		}
	}
	if regressed {
		tw("FAIL: at least one benchmark regressed by more than %.0f%% in ns/op\n", threshold)
	}
	return regressed, nil
}

func parse(sc *bufio.Scanner) (Output, error) {
	var out Output
	pkg := ""
	seen := map[string]int{} // benchKey → index in out.Benchmarks
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos: "):
			out.GoOS = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			out.GoArch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			out.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "Benchmark"):
			if b, ok := parseBench(line); ok {
				b.Pkg = pkg
				if i, dup := seen[benchKey(b)]; dup {
					// Keep the fastest of repeated -count runs.
					if b.NsPerOp < out.Benchmarks[i].NsPerOp {
						out.Benchmarks[i] = b
					}
					continue
				}
				seen[benchKey(b)] = len(out.Benchmarks)
				out.Benchmarks = append(out.Benchmarks, b)
			}
		}
	}
	return out, sc.Err()
}

// parseBench parses one result line; ok is false for lines that merely
// start with "Benchmark" (e.g. a benchmark's own log output).
func parseBench(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return Benchmark{}, false
	}
	b := Benchmark{Name: fields[0], Metrics: map[string]float64{}}
	if i := strings.LastIndex(b.Name, "-"); i > 0 {
		if procs, err := strconv.Atoi(b.Name[i+1:]); err == nil {
			b.Procs = procs
			b.Name = b.Name[:i]
		}
	}
	b.Name = strings.TrimPrefix(b.Name, "Benchmark")
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b.Iterations = iters
	// Remaining fields come in (value, unit) pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		unit := fields[i+1]
		if unit == "ns/op" {
			b.NsPerOp = v
		} else {
			b.Metrics[unit] = v
		}
	}
	if len(b.Metrics) == 0 {
		b.Metrics = nil
	}
	return b, true
}
