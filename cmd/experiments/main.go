// Command experiments runs the E1–E19 validation suite of DESIGN.md §3 and
// prints one table per experiment. EXPERIMENTS.md records a reference run.
//
// Usage: experiments [-trials N] [-seed S] [-workers W] [e1 e2 … | all]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"desyncpfair/internal/exp"
)

func main() {
	trials := flag.Int("trials", 20, "trials per experiment cell")
	seed := flag.Int64("seed", 1, "base RNG seed")
	outDir := flag.String("out", "", "also write each table to <out>/<id>.txt")
	workers := flag.Int("workers", 0, "parallel sweep workers (0 = all CPUs, 1 = serial); results are identical at any setting")
	flag.Parse()
	emitDir = *outDir
	exp.Workers = *workers
	which := map[string]bool{}
	for _, a := range flag.Args() {
		which[a] = true
	}
	if len(which) == 0 {
		which["all"] = true
	}
	if err := run(which, *trials, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func want(which map[string]bool, name string) bool { return which["all"] || which[name] }

// emitDir, when set, receives one file per experiment table.
var emitDir string

// emitCSV writes the typed rows as <dir>/<id>.csv when -out is set.
func emitCSV(id string, rows interface{}) error {
	if emitDir == "" {
		return nil
	}
	if err := os.MkdirAll(emitDir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(emitDir, id+".csv"))
	if err != nil {
		return err
	}
	defer f.Close()
	return exp.WriteCSV(f, rows)
}

// emit prints the table and, when -out is set, writes it to <dir>/<id>.txt.
func emit(id, table string) error {
	fmt.Println(table)
	if emitDir == "" {
		return nil
	}
	if err := os.MkdirAll(emitDir, 0o755); err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(emitDir, id+".txt"), []byte(strings.TrimLeft(table, "\n")), 0o644)
}

func run(which map[string]bool, trials int, seed int64) error {
	if want(which, "e1") {
		pts, err := exp.E1Tightness(exp.DefaultDeltas())
		if err != nil {
			return err
		}
		rows := make([]string, len(pts))
		for i, p := range pts {
			rows[i] = fmt.Sprintf("%-8s %-12s %s", p.Delta, p.MaxTardiness, "= 1-δ")
		}
		if err := emit("e1", exp.Table("E1  tightness of Theorem 3 on the Fig. 2 construction\nδ        max tardiness", rows)); err != nil {
			return err
		}
		if err := emitCSV("e1", pts); err != nil {
			return err
		}
	}
	if want(which, "e2") {
		pts, err := exp.E2DVQTardiness(seed, trials, []int{2, 4, 8})
		if err != nil {
			return err
		}
		var rows []string
		for _, p := range pts {
			rows = append(rows, fmt.Sprintf("%-3d %-12s %-7d %-9d %-7d %-10s %s",
				p.M, p.YieldModel, p.Trials, p.Subtasks, p.Misses, p.MaxTardiness, exp.Bool(p.BoundHolds)))
		}
		if err := emit("e2", exp.Table("E2  PD²-DVQ tardiness ≤ 1 (Theorem 3) at scale\nM   yield        trials  subtasks  misses  max-tard   bound-holds", rows)); err != nil {
			return err
		}
		if err := emitCSV("e2", pts); err != nil {
			return err
		}
	}
	if want(which, "e3") {
		pts, err := exp.E3SFQOptimality(seed, trials)
		if err != nil {
			return err
		}
		var rows []string
		for _, p := range pts {
			rows = append(rows, fmt.Sprintf("%-5s %-7d %-9d %d", p.Policy, p.Trials, p.Subtasks, p.Misses))
		}
		if err := emit("e3", exp.Table("E3  SFQ optimality anchor (PF/PD/PD² must have 0 misses)\npol   trials  subtasks  misses", rows)); err != nil {
			return err
		}
		if err := emitCSV("e3", pts); err != nil {
			return err
		}
	}
	if want(which, "e4") {
		pts, err := exp.E4PDBTardiness(seed, trials, []int{2, 4, 8})
		if err != nil {
			return err
		}
		var rows []string
		for _, p := range pts {
			rows = append(rows, fmt.Sprintf("%-3d %-12s %-7d %-9d %-7d %-10s %s",
				p.M, p.YieldModel, p.Trials, p.Subtasks, p.Misses, p.MaxTardiness, exp.Bool(p.BoundHolds)))
		}
		if err := emit("e4", exp.Table("E4  PD^B tardiness ≤ 1 (Theorem 2) at scale\nM   yield        trials  subtasks  misses  max-tard   bound-holds", rows)); err != nil {
			return err
		}
		if err := emitCSV("e4", pts); err != nil {
			return err
		}
	}
	if want(which, "e5") {
		pt, err := exp.E5Transform(seed, trials)
		if err != nil {
			return err
		}
		if err := emit("e5", exp.Table("E5  S_DQ → S_B transform (Lemmas 3–5)\ntrials aligned olapped free  max-S_DQ-tard max-S_B-tard lemmas-hold",
			[]string{fmt.Sprintf("%-6d %-7d %-7d %-5d %-13s %-12s %s",
				pt.Trials, pt.Aligned, pt.Olapped, pt.Free, pt.MaxSDQTardiness, pt.MaxSBTardiness, exp.Bool(pt.AllLemmasHold))})); err != nil {
			return err
		}
		if err := emitCSV("e5", []exp.TransformPoint{pt}); err != nil {
			return err
		}
	}
	if want(which, "e6") {
		pt, err := exp.E6PropertyPB(seed, trials)
		if err != nil {
			return err
		}
		if err := emit("e6", exp.Table("E6  priority inversions and Property PB (Lemma 1)\ntrials elig-blocked pred-blocked property-holds",
			[]string{fmt.Sprintf("%-6d %-12d %-12d %s",
				pt.Trials, pt.EligibilityEvents, pt.PredecessorEvents, exp.Bool(pt.PropertyHolds))})); err != nil {
			return err
		}
		if err := emitCSV("e6", []exp.PBPoint{pt}); err != nil {
			return err
		}
	}
	if want(which, "e7") {
		pts, err := exp.E7Reclamation(seed, trials, 4)
		if err != nil {
			return err
		}
		var rows []string
		for _, p := range pts {
			rows = append(rows, fmt.Sprintf("%-6d %-13.3f %-10.3f %-9.3f %-9.3f %-9s %s",
				p.FullProb, p.ResidueFrac, p.MakespanGain, p.SFQ.MeanResponse, p.DVQ.MeanResponse,
				p.SFQ.MaxTardiness, p.DVQ.MaxTardiness))
		}
		if err := emit("e7", exp.Table("E7  work-conservation gain of the DVQ model (M=4)\npFull%  residue/quant  SFQ/DVQ-ms  respSFQ   respDVQ   tardSFQ   tardDVQ", rows)); err != nil {
			return err
		}
		if err := emitCSV("e7", pts); err != nil {
			return err
		}
	}
	if want(which, "e8") {
		pts, err := exp.E8EPDF(seed, trials, []int{2, 4, 8})
		if err != nil {
			return err
		}
		var rows []string
		for _, p := range pts {
			rows = append(rows, fmt.Sprintf("%-3d %-7d %-9s %-9s %s",
				p.M, p.Trials, p.MaxSFQ, p.MaxDVQ, exp.Bool(p.DeltaAtMost1)))
		}
		if err := emit("e8", exp.Table("E8  EPDF: DVQ worsens tardiness by at most one quantum\nM   trials  max-SFQ   max-DVQ   Δ≤1", rows)); err != nil {
			return err
		}
		if err := emitCSV("e8", pts); err != nil {
			return err
		}
	}
	if want(which, "e9") {
		pts, err := exp.E9Staggered(seed, trials, []int{2, 4, 8})
		if err != nil {
			return err
		}
		var rows []string
		for _, p := range pts {
			rows = append(rows, fmt.Sprintf("%-3d %-7d %-10s %-13d %d",
				p.M, p.Trials, p.MaxTardiness, p.AlignedBurst, p.StaggeredBurst))
		}
		if err := emit("e9", exp.Table("E9  staggered quanta (Holman–Anderson): burst M → 1, tardiness ≤ 1\nM   trials  max-tard   aligned-burst staggered-burst", rows)); err != nil {
			return err
		}
		if err := emitCSV("e9", pts); err != nil {
			return err
		}
	}
	if want(which, "e10") {
		pts, err := exp.E10UtilizationBound(seed, trials, 4)
		if err != nil {
			return err
		}
		var rows []string
		for _, p := range pts {
			rows = append(rows, fmt.Sprintf("%-6d %-7d %-13d %-13d %-11d %-10d %d",
				p.UtilPct, p.Trials, p.PartitionOK, p.PartitionRMOK, p.GEDFMissTrials, p.GRMMissTrials, p.PfairMissTrials))
		}
		if err := emit("e10", exp.Table("E10  utilization bound: partitioned/global EDF+RM vs PD² (M=4, heavy tasks)\nutil%  trials  part-EDF-ok   part-RM-ok    gEDF-miss   gRM-miss   PD²-miss", rows)); err != nil {
			return err
		}
		if err := emitCSV("e10", pts); err != nil {
			return err
		}
	}
	if want(which, "e11") {
		pt, err := exp.E11Compliance(seed, trials)
		if err != nil {
			return err
		}
		if err := emit("e11", exp.Table("E11  k-compliance induction (Lemma 6)\ntrials total-k max-PD^B-tard all-valid",
			[]string{fmt.Sprintf("%-6d %-7d %-13s %s", pt.Trials, pt.TotalK, pt.MaxPDBTard, exp.Bool(pt.AllValid))})); err != nil {
			return err
		}
		if err := emitCSV("e11", []exp.CompliancePoint{pt}); err != nil {
			return err
		}
	}
	if want(which, "e13") {
		pts, err := exp.E13EarlyRelease(seed, trials, 4)
		if err != nil {
			return err
		}
		var rows []string
		for _, p := range pts {
			rows = append(rows, fmt.Sprintf("%-6d %-7d %-12.3f %-10.3f %-9d %d",
				p.UtilPct, p.Trials, p.PlainSlack, p.ERSlack, p.DFSAux, p.ERMisses))
		}
		if err := emit("e13", exp.Table("E13  early releasing vs DFS's auxiliary scheduler (M=4)\nutil%  trials  plain-slack  ER-slack   DFS-aux   ER-misses", rows)); err != nil {
			return err
		}
		if err := emitCSV("e13", pts); err != nil {
			return err
		}
	}
	if want(which, "e14") {
		pts, err := exp.E14TieBreakAblation(seed, trials)
		if err != nil {
			return err
		}
		var rows []string
		for _, p := range pts {
			rows = append(rows, fmt.Sprintf("%-8s %-7d %-12d %-7d %s",
				p.Policy, p.Trials, p.MissTrials, p.Misses, p.MaxTardiness))
		}
		if err := emit("e14", exp.Table("E14  PD² tie-break ablation under SFQ (heavy tasks, M∈{3..5})\npolicy   trials  miss-trials  misses  max-tard", rows)); err != nil {
			return err
		}
		if err := emitCSV("e14", pts); err != nil {
			return err
		}
	}
	if want(which, "e15") {
		pts, err := exp.E15ClockDrift(seed, trials, 4)
		if err != nil {
			return err
		}
		var rows []string
		for _, p := range pts {
			eps := "0"
			if p.EpsDen > 0 {
				eps = fmt.Sprintf("1/%d", p.EpsDen)
			}
			rows = append(rows, fmt.Sprintf("%-7s %-7d %-11s %-11s %-9s %s",
				eps, p.Trials, p.TardShort, p.TardLong, p.TardDVQ, exp.Bool(p.DVQBoundHolds)))
		}
		if err := emit("e15", exp.Table("E15  unsynchronized timer interrupts: drifting SFQ vs DVQ (M=4)\nε       trials  tard-short  tard-long   tard-DVQ  DVQ≤1", rows)); err != nil {
			return err
		}
		if err := emitCSV("e15", pts); err != nil {
			return err
		}
	}
	if want(which, "e16") {
		pts, err := exp.E16QuantumSize(1, 20)
		if err != nil {
			return err
		}
		var rows []string
		for _, p := range pts {
			miss := "-"
			if p.Misses >= 0 {
				miss = fmt.Sprintf("%d", p.Misses)
			}
			rows = append(rows, fmt.Sprintf("%-6d %-12s %-9s %s",
				p.Q, p.Utilization, exp.Bool(p.Feasible), miss))
		}
		if err := emit("e16", exp.Table("E16  quantum-size selection for a real workload (M=1, 20µs overhead)\nQ(µs)  utilization  feasible  PD²-misses", rows)); err != nil {
			return err
		}
		if err := emitCSV("e16", pts); err != nil {
			return err
		}
	}
	if want(which, "e17") {
		pts, err := exp.E17Overload(seed, trials, 4)
		if err != nil {
			return err
		}
		var rows []string
		for _, p := range pts {
			rows = append(rows, fmt.Sprintf("%-6d %-7d %-11s %s",
				p.UtilPct, p.Trials, p.TardShort, p.TardLong))
		}
		if err := emit("e17", exp.Table("E17  feasibility is necessary: PD²-DVQ past Σwt = M (M=4)\nutil%  trials  tard-short  tard-long", rows)); err != nil {
			return err
		}
		if err := emitCSV("e17", pts); err != nil {
			return err
		}
	}
	if want(which, "e18") {
		pts, err := exp.E18PolicyMatrix(seed, trials, 2)
		if err != nil {
			return err
		}
		var rows []string
		for _, p := range pts {
			rows = append(rows, fmt.Sprintf("%-5s %-7d %-9d %-7d %-10s %.3f",
				p.Policy, p.Trials, p.Subtasks, p.Misses, p.MaxTardiness, p.MeanResponse))
		}
		if err := emit("e18", exp.Table("E18  policy matrix under DVQ (M=2, uniform yields)\npol   trials  subtasks  misses  max-tard   mean-resp", rows)); err != nil {
			return err
		}
		if err := emitCSV("e18", pts); err != nil {
			return err
		}
	}
	if want(which, "e19") {
		pts, err := exp.E19TightnessByM(exp.DefaultDeltas()[2], []int{2, 4, 6, 8, 12, 16})
		if err != nil {
			return err
		}
		var rows []string
		for _, p := range pts {
			rows = append(rows, fmt.Sprintf("%-3d %-10s %s", p.M, p.MaxTardiness, exp.Bool(p.EqualsOneMinusDelta)))
		}
		if err := emit("e19", exp.Table("E19  replicated tightness construction across M (δ=1/8)\nM   max-tard   =1-δ", rows)); err != nil {
			return err
		}
		if err := emitCSV("e19", pts); err != nil {
			return err
		}
	}
	if want(which, "e20") {
		pts, err := exp.E20Dynamics(seed, trials, 4)
		if err != nil {
			return err
		}
		var rows []string
		for _, p := range pts {
			rows = append(rows, fmt.Sprintf("%-8d %-6d %-7d %-9d %-7d %-10s %d",
				p.JitterPct, p.OmitPct, p.Trials, p.Subtasks, p.Misses, p.MaxTardiness, p.Blocking))
		}
		if err := emit("e20", exp.Table("E20  IS/GIS dynamics sensitivity under PD²-DVQ (M=4, adversarial yields)\njitter%  omit%  trials  subtasks  misses  max-tard   blocking", rows)); err != nil {
			return err
		}
		if err := emitCSV("e20", pts); err != nil {
			return err
		}
	}
	if want(which, "e12") {
		pt, err := exp.E12FractionalCosts(seed, trials)
		if err != nil {
			return err
		}
		if err := emit("e12", exp.Table("E12  fractional execution costs (paper's future work)\ntrials max-DVQ-tard SFQ-stranded bound-holds",
			[]string{fmt.Sprintf("%-6d %-12s %-12.1f %s", pt.Trials, pt.MaxTardiness, pt.SFQResidue, exp.Bool(pt.BoundHolds))})); err != nil {
			return err
		}
		if err := emitCSV("e12", []exp.FracCostPoint{pt}); err != nil {
			return err
		}
	}
	return nil
}
