package main

import (
	"os"
	"path/filepath"
	"testing"

	pfair "desyncpfair"
)

func TestParseWeights(t *testing.T) {
	ws, err := parseWeights("1/2, 3/4,1/6")
	if err != nil {
		t.Fatal(err)
	}
	if len(ws) != 3 || ws[1] != pfair.W(3, 4) {
		t.Errorf("weights = %v", ws)
	}
	for _, bad := range []string{"", "1", "1/2/3", "a/b", "3/2", "0/4"} {
		if _, err := parseWeights(bad); err == nil {
			t.Errorf("parseWeights(%q) should fail", bad)
		}
	}
}

func TestParseYield(t *testing.T) {
	sys := pfair.Periodic([]pfair.Weight{pfair.W(1, 2)}, 4)
	sub := sys.All()[0]
	cases := []string{"full", "uniform:8", "bimodal:60:8", "adversarial:1/64"}
	for _, spec := range cases {
		y, err := parseYield(spec, 1)
		if err != nil {
			t.Fatalf("%s: %v", spec, err)
		}
		if c := y(sub); c.Sign() <= 0 || pfair.IntRat(1).Less(c) {
			t.Errorf("%s: cost %s out of range", spec, c)
		}
	}
	for _, bad := range []string{"", "nope", "uniform", "uniform:x", "bimodal:60", "bimodal:a:b", "adversarial:", "adversarial:x", "adversarial:1/x", "adversarial:1"} {
		if _, err := parseYield(bad, 1); err == nil {
			t.Errorf("parseYield(%q) should fail", bad)
		}
	}
}

func TestRunEndToEnd(t *testing.T) {
	dir := t.TempDir()
	csv := filepath.Join(dir, "out.csv")
	html := filepath.Join(dir, "out.html")
	for _, mdl := range []string{"sfq", "staggered", "dvq", "pdb", "drift"} {
		if err := run(2, "1/6,1/6,1/6,1/2,1/2,1/2", 0, "", mdl, "PD2", 6, "uniform:8", "1/100", 1, false, csv, html); err != nil {
			t.Fatalf("%s: %v", mdl, err)
		}
	}
	if fi, err := os.Stat(csv); err != nil || fi.Size() == 0 {
		t.Error("csv not written")
	}
	if fi, err := os.Stat(html); err != nil || fi.Size() == 0 {
		t.Error("html not written")
	}
	if err := run(2, "x", 0, "", "dvq", "PD2", 6, "full", "1/100", 1, false, "", ""); err == nil {
		t.Error("bad weights accepted")
	}
	if err := run(2, "1/2", 0, "", "bogus", "PD2", 6, "full", "1/100", 1, false, "", ""); err == nil {
		t.Error("bad model accepted")
	}
	if err := run(2, "1/2", 0, "", "dvq", "BOGUS", 6, "full", "1/100", 1, false, "", ""); err == nil {
		t.Error("bad policy accepted")
	}
	if err := run(2, "", 5, "", "dvq", "PD2", 12, "full", "1/100", 1, true, "", ""); err != nil {
		t.Errorf("random mode: %v", err)
	}
}

func TestRunFromJSONFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "tasks.json")
	data := `{"tasks":[
		{"name":"A","e":1,"p":2,"periodicUntil":8},
		{"name":"B","e":1,"p":2,"periodicUntil":8},
		{"name":"C","e":3,"p":4,"subtasks":[{"i":1,"elig":0},{"i":2,"elig":1},{"i":3,"theta":1,"elig":3}]}
	]}`
	if err := os.WriteFile(path, []byte(data), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(2, "", 0, path, "dvq", "PD2", 0, "full", "1/100", 1, false, "", ""); err != nil {
		t.Fatal(err)
	}
	if err := run(2, "", 0, filepath.Join(dir, "missing.json"), "dvq", "PD2", 0, "full", "1/100", 1, false, "", ""); err == nil {
		t.Error("missing file accepted")
	}
	bad := filepath.Join(dir, "bad.json")
	os.WriteFile(bad, []byte(`{"tasks":[{"name":"X","e":3,"p":2,"periodicUntil":4}]}`), 0o644)
	if err := run(2, "", 0, bad, "dvq", "PD2", 0, "full", "1/100", 1, false, "", ""); err == nil {
		t.Error("invalid system accepted")
	}
}
