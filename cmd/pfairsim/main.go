// Command pfairsim simulates a task system under any of the schedulers in
// this repository and reports tardiness, misses and utilization.
//
// Usage:
//
//	pfairsim -m 2 -weights 1/6,1/6,1/6,1/2,1/2,1/2 -model dvq \
//	         -policy PD2 -horizon 12 -yield uniform:8 -render -csv out.csv
//
// Models: sfq (classical Pfair), staggered (Holman–Anderson offsets),
// dvq (the paper's desynchronized variable-quantum model), pdb (PD^B).
// Yields: full | uniform:DEN | bimodal:PFULL:DEN | adversarial:NUM/DEN.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"

	pfair "desyncpfair"
	"desyncpfair/internal/gen"
	"desyncpfair/internal/trace"
)

func main() {
	var (
		m        = flag.Int("m", 2, "number of processors")
		weights  = flag.String("weights", "1/6,1/6,1/6,1/2,1/2,1/2", "comma-separated task weights e/p")
		random   = flag.Int("random", 0, "generate N random tasks at full utilization instead of -weights")
		tasks    = flag.String("tasks", "", "load the task system from a JSON file (overrides -weights/-random/-horizon)")
		mdl      = flag.String("model", "dvq", "scheduling model: sfq|staggered|dvq|pdb|drift")
		eps      = flag.String("drift", "1/100", "per-processor clock drift ε for -model drift")
		policy   = flag.String("policy", "PD2", "priority policy: EPDF|PF|PD|PD2")
		horizon  = flag.Int64("horizon", 12, "release subtasks with r < horizon")
		yield    = flag.String("yield", "full", "yield model: full|uniform:DEN|bimodal:PFULL:DEN|adversarial:NUM/DEN")
		seed     = flag.Int64("seed", 1, "seed for randomized yield models")
		render   = flag.Bool("render", false, "print the schedule")
		csvPath  = flag.String("csv", "", "write the schedule as CSV to this file")
		htmlPath = flag.String("html", "", "write the schedule as an HTML Gantt chart to this file")
	)
	flag.Parse()
	if err := run(*m, *weights, *random, *tasks, *mdl, *policy, *horizon, *yield, *eps, *seed, *render, *csvPath, *htmlPath); err != nil {
		fmt.Fprintln(os.Stderr, "pfairsim:", err)
		os.Exit(1)
	}
}

func run(m int, weightSpec string, random int, tasksPath, mdl, policyName string, horizon int64, yieldSpec, epsSpec string, seed int64, render bool, csvPath, htmlPath string) error {
	var ws []pfair.Weight
	var err error
	var sys *pfair.System
	if tasksPath != "" {
		data, err := os.ReadFile(tasksPath)
		if err != nil {
			return err
		}
		sys = pfair.NewSystem()
		if err := json.Unmarshal(data, sys); err != nil {
			return fmt.Errorf("parsing %s: %w", tasksPath, err)
		}
	} else if random > 0 {
		rng := rand.New(rand.NewSource(seed))
		q := int64(12)
		if int64(random) > int64(m)*q {
			return fmt.Errorf("-random %d exceeds M·12 = %d tasks at full utilization", random, m*12)
		}
		ws = gen.GridWeights(rng, random, q, int64(m)*q, gen.MixedWeights)
	} else {
		ws, err = parseWeights(weightSpec)
		if err != nil {
			return err
		}
	}
	pol := pfair.PolicyByName(policyName)
	if pol == nil {
		return fmt.Errorf("unknown policy %q", policyName)
	}
	y, err := parseYield(yieldSpec, seed)
	if err != nil {
		return err
	}
	if sys == nil {
		sys = pfair.Periodic(ws, horizon)
	}
	fmt.Printf("tasks: %d, total utilization %s, processors %d, model %s, policy %s\n",
		len(sys.Tasks), sys.TotalUtilization(), m, mdl, pol.Name())
	if !sys.Feasible(m) {
		fmt.Printf("warning: utilization exceeds M — no tardiness bound applies\n")
	}

	var s *pfair.Schedule
	switch mdl {
	case "sfq":
		s, err = pfair.RunSFQ(sys, pfair.SFQOptions{M: m, Policy: pol, Yield: y})
	case "staggered":
		s, err = pfair.RunSFQ(sys, pfair.SFQOptions{M: m, Policy: pol, Yield: y, Staggered: true})
	case "dvq":
		s, err = pfair.RunDVQ(sys, pfair.DVQOptions{M: m, Policy: pol, Yield: y})
	case "pdb":
		var res *pfair.PDBResult
		res, err = pfair.RunPDB(sys, pfair.PDBOptions{M: m, Yield: y})
		if res != nil {
			s = res.Schedule
		}
	case "drift":
		var e pfair.Rat
		e, err = pfair.ParseRat(epsSpec)
		if err != nil {
			return err
		}
		epsilon := make([]pfair.Rat, m)
		for k := range epsilon {
			epsilon[k] = e
		}
		s, err = pfair.RunDriftedSFQ(sys, pfair.DriftOptions{M: m, Policy: pol, Yield: y, Epsilon: epsilon})
	default:
		return fmt.Errorf("unknown model %q", mdl)
	}
	if err != nil {
		return err
	}

	sum := pfair.Summarize(s)
	fmt.Printf("subtasks scheduled : %d\n", sum.Subtasks)
	fmt.Printf("deadline misses    : %d (%.1f%%)\n", sum.Misses, 100*sum.MissRate())
	fmt.Printf("max tardiness      : %s quanta\n", sum.MaxTardiness)
	fmt.Printf("mean response      : %.3f quanta\n", sum.MeanResponse)
	fmt.Printf("makespan           : %s\n", sum.Makespan)
	fmt.Printf("busy fraction      : %.3f\n", sum.BusyFraction)
	if mdl == "sfq" || mdl == "staggered" {
		fmt.Printf("stranded residue   : %s quanta\n", pfair.QuantumResidue(s))
	}

	if render {
		if mdl == "dvq" || mdl == "staggered" || mdl == "drift" {
			fmt.Print(pfair.RenderTimeline(s))
		} else {
			fmt.Print(pfair.RenderSlots(s))
		}
	}
	if csvPath != "" {
		f, err := os.Create(csvPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := trace.WriteCSV(f, s); err != nil {
			return err
		}
		fmt.Printf("schedule written to %s\n", csvPath)
	}
	if htmlPath != "" {
		f, err := os.Create(htmlPath)
		if err != nil {
			return err
		}
		defer f.Close()
		title := fmt.Sprintf("%s under %s (M=%d)", pol.Name(), mdl, m)
		if err := trace.WriteHTML(f, s, title); err != nil {
			return err
		}
		fmt.Printf("chart written to %s\n", htmlPath)
	}
	return nil
}

func parseWeights(spec string) ([]pfair.Weight, error) {
	var ws []pfair.Weight
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		nd := strings.Split(part, "/")
		if len(nd) != 2 {
			return nil, fmt.Errorf("weight %q is not of the form e/p", part)
		}
		e, err1 := strconv.ParseInt(nd[0], 10, 64)
		p, err2 := strconv.ParseInt(nd[1], 10, 64)
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("weight %q is not numeric", part)
		}
		w := pfair.W(e, p)
		if err := w.Validate(); err != nil {
			return nil, err
		}
		ws = append(ws, w)
	}
	return ws, nil
}

func parseYield(spec string, seed int64) (pfair.YieldFn, error) {
	parts := strings.Split(spec, ":")
	switch parts[0] {
	case "full":
		return pfair.FullCost, nil
	case "uniform":
		if len(parts) != 2 {
			return nil, fmt.Errorf("uniform yield needs uniform:DEN")
		}
		den, err := strconv.ParseInt(parts[1], 10, 64)
		if err != nil {
			return nil, err
		}
		return pfair.UniformYield(seed, den), nil
	case "bimodal":
		if len(parts) != 3 {
			return nil, fmt.Errorf("bimodal yield needs bimodal:PFULL:DEN")
		}
		pFull, err1 := strconv.Atoi(parts[1])
		den, err2 := strconv.ParseInt(parts[2], 10, 64)
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("bad bimodal spec %q", spec)
		}
		return pfair.BimodalYield(seed, pFull, den), nil
	case "adversarial":
		if len(parts) != 2 {
			return nil, fmt.Errorf("adversarial yield needs adversarial:NUM/DEN")
		}
		nd := strings.Split(parts[1], "/")
		if len(nd) != 2 {
			return nil, fmt.Errorf("bad δ %q", parts[1])
		}
		n, err1 := strconv.ParseInt(nd[0], 10, 64)
		d, err2 := strconv.ParseInt(nd[1], 10, 64)
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("bad δ %q", parts[1])
		}
		return pfair.AdversarialYield(pfair.NewRat(n, d), nil), nil
	}
	return nil, fmt.Errorf("unknown yield model %q", spec)
}
