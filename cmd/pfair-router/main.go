// Command pfair-router fronts a set of pfaird replica groups with a
// single stateless HTTP endpoint: it shards tenants across groups under
// a pluggable placement policy, proxies writes to each group's current
// leader, fails reads over to the most caught-up follower, and promotes
// a follower when a group's leader stays down past -failover-after.
//
// Usage:
//
//	pfair-router -addr :8090 \
//	  -backends "http://a:8080,http://a2:8080;http://b:8080" \
//	  -policy rendezvous
//
// -backends groups are ';'-separated; backends within a group (one
// leader plus its followers) are ','-separated. Policies: rendezvous
// (default — deterministic, shared-nothing), round-robin, least-loaded
// (scrapes pfaird_tenants from each leader's /metrics).
//
// The router holds no durable state. Tenant placement is either
// recomputed (rendezvous) or relearned by probing the groups, so routers
// restart freely and can run in parallel behind a load balancer. See
// TUTORIAL.md §6 for a 3-node walkthrough including a kill-the-leader
// failover demo.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net"
	"net/http"
	"os/signal"
	"syscall"
	"time"

	"desyncpfair/internal/cluster"
)

func main() {
	var (
		addr           = flag.String("addr", ":8090", "listen address")
		backends       = flag.String("backends", "", "replica groups: ';' between groups, ',' between a group's backends")
		policy         = flag.String("policy", "rendezvous", "tenant placement policy: rendezvous, round-robin or least-loaded")
		healthInterval = flag.Duration("health-interval", 100*time.Millisecond, "backend probe period")
		failoverAfter  = flag.Duration("failover-after", 500*time.Millisecond, "promote a follower after a group is leaderless this long (0 disables)")
		grace          = flag.Duration("grace", 10*time.Second, "graceful shutdown timeout")
	)
	flag.Parse()

	if err := run(context.Background(), *addr, *backends, *policy, *healthInterval, *failoverAfter, *grace, nil); err != nil {
		log.Fatalf("pfair-router: %v", err)
	}
}

// run serves until ctx is cancelled or SIGINT/SIGTERM arrives. ready, if
// non-nil, receives the bound address — tests use it with addr ":0".
func run(ctx context.Context, addr, backends, policy string, healthInterval, failoverAfter, grace time.Duration, ready func(addr string)) error {
	groups, err := cluster.ParseGroups(backends)
	if err != nil {
		return err
	}
	pol, err := cluster.PolicyByName(policy)
	if err != nil {
		return err
	}
	router, err := cluster.NewRouter(cluster.RouterOptions{
		Groups:         groups,
		Policy:         pol,
		HealthInterval: healthInterval,
		FailoverAfter:  failoverAfter,
		Logf:           log.Printf,
	})
	if err != nil {
		return err
	}
	router.Start()
	defer router.Close()

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: router.Handler()}

	ctx, stop := signal.NotifyContext(ctx, syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- hs.Serve(ln) }()
	log.Printf("pfair-router listening on %s (%d group(s), policy %s)", ln.Addr(), len(groups), pol.Name())
	if ready != nil {
		ready(ln.Addr().String())
	}

	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}

	shutdownCtx, cancel := context.WithTimeout(context.Background(), grace)
	defer cancel()
	if err := hs.Shutdown(shutdownCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("pfair-router: forced close: %v", err)
	}
	log.Printf("pfair-router: bye")
	return nil
}
