// Command figures regenerates the paper's figures as ASCII diagrams with
// the properties each caption claims verified programmatically.
//
// Usage: figures [fig1|fig2|fig3|fig4|fig6|all]   (default all)
//
// Fig. 5 is the proof diagram of Lemma 4 (covered by the Lemma 4 checker in
// internal/core) and Fig. 7 illustrates proof cases of Lemma 6 (covered by
// the compliance machinery); neither is a schedule, so neither is rendered.
package main

import (
	"fmt"
	"os"

	"desyncpfair/internal/exp"
)

func main() {
	which := "all"
	if len(os.Args) > 1 {
		which = os.Args[1]
	}
	if err := run(which); err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
		os.Exit(1)
	}
}

func run(which string) error {
	type figure struct {
		name string
		fn   func() (string, error)
	}
	figs := []figure{
		{"fig1", func() (string, error) { return exp.Fig1(), nil }},
		{"fig2", exp.Fig2},
		{"fig3", func() (string, error) { out, _, err := exp.Fig3(); return out, err }},
		{"fig4", exp.Fig4},
		{"fig6", exp.Fig6},
	}
	ran := false
	for _, f := range figs {
		if which != "all" && which != f.name {
			continue
		}
		ran = true
		out, err := f.fn()
		if err != nil {
			return fmt.Errorf("%s: %w", f.name, err)
		}
		fmt.Println("=================================================================")
		fmt.Println(out)
	}
	if !ran {
		return fmt.Errorf("unknown figure %q (want fig1|fig2|fig3|fig4|fig6|all)", which)
	}
	return nil
}
