package main

import (
	"context"
	"io"
	"net/http"
	"os"
	"syscall"
	"testing"
	"time"

	"desyncpfair/internal/client"
	"desyncpfair/internal/model"
	"desyncpfair/internal/server"
)

// TestSIGTERMDuringStreamDrainsAndRecovers boots the real daemon loop on a
// random port with a data directory, opens a live dispatch stream, and
// delivers an actual SIGTERM while the stream is blocked. The daemon must
// exit cleanly (stream EOF, serve() returns nil) and the directory must
// reopen as a snapshot-only boot with every acknowledged command intact.
func TestSIGTERMDuringStreamDrainsAndRecovers(t *testing.T) {
	dir := t.TempDir()
	cfg := config{
		addr:          "127.0.0.1:0",
		grace:         5 * time.Second,
		dataDir:       dir,
		fsyncEvery:    2,
		snapshotEvery: 8, // several snapshot writes during the short run
		pprof:         true,
		traceBuffer:   64,
	}
	addrCh := make(chan string, 1)
	done := make(chan error, 1)
	go func() {
		done <- serve(context.Background(), cfg, func(a string) { addrCh <- a })
	}()
	var addr string
	select {
	case addr = <-addrCh:
	case err := <-done:
		t.Fatalf("serve exited before listening: %v", err)
	}

	ctx := context.Background()
	c := client.New("http://"+addr, nil)

	// The -pprof flag mounts the profile index on the same listener.
	resp, err := http.Get("http://" + addr + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/pprof/cmdline: status %d", resp.StatusCode)
	}

	if _, err := c.CreateTenant(ctx, "t", 2, ""); err != nil {
		t.Fatal(err)
	}
	if _, err := c.RegisterTask(ctx, "t", "w", model.W(2, 3)); err != nil {
		t.Fatal(err)
	}
	var produced int64
	for i := 0; i < 5; i++ {
		if _, err := c.SubmitJob(ctx, "t", "w", ""); err != nil {
			t.Fatal(err)
		}
		adv, err := c.AdvanceBy(ctx, "t", "1")
		if err != nil {
			t.Fatal(err)
		}
		produced += adv.Dispatched
	}
	acked := int64(2 + 5*2) // create, register, and the loop's commands

	st, err := c.StreamDispatches(ctx, "t", 0, true)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	var got int64
	for got < produced {
		if _, err := st.Next(); err != nil {
			t.Fatalf("stream after %d events: %v", got, err)
		}
		got++
	}

	// The stream is now blocked on live decisions; pull the trigger.
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := st.Next(); err == io.EOF {
			break
		} else if err != nil {
			t.Fatalf("stream must drain to EOF on SIGTERM, got %v", err)
		}
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serve returned %v after SIGTERM", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not exit within 10s of SIGTERM")
	}

	// The final snapshot makes the next boot replay-free and complete.
	srv, err := server.Open(server.Options{DataDir: dir})
	if err != nil {
		t.Fatalf("reopen after SIGTERM: %v", err)
	}
	defer srv.Close()
	rec := srv.Recovery()
	if rec.RecordsReplayed != 0 || rec.ReplayErrors != 0 || rec.DispatchMismatches != 0 {
		t.Fatalf("post-SIGTERM boot: %+v, want a clean snapshot-only recovery", rec)
	}
	if rec.Commands != uint64(acked) {
		t.Fatalf("recovered %d commands, %d were acknowledged before SIGTERM", rec.Commands, acked)
	}
	if rec.Tenants != 1 {
		t.Fatalf("recovered %d tenants, want 1", rec.Tenants)
	}
}
