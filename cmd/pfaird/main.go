// Command pfaird serves the multi-tenant Pfair scheduling service over
// HTTP: tenants are isolated PD²-DVQ online executives, tasks are
// admission-checked against Σwt ≤ M, and dispatch decisions stream to
// followers as newline-delimited JSON. See internal/server for the API and
// TUTORIAL.md ("Running pfaird") for a curl walkthrough.
//
// Usage:
//
//	pfaird -addr :8080
//
// On SIGINT/SIGTERM the daemon drains: in-flight dispatch streams flush
// and terminate, then the listener shuts down gracefully.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os/signal"
	"syscall"
	"time"

	"desyncpfair/internal/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	grace := flag.Duration("grace", 10*time.Second, "graceful shutdown timeout")
	flag.Parse()

	srv := server.New()
	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- hs.ListenAndServe() }()
	log.Printf("pfaird listening on %s", *addr)

	select {
	case err := <-errCh:
		log.Fatalf("pfaird: %v", err)
	case <-ctx.Done():
	}

	log.Printf("pfaird: shutting down, draining streams (up to %s)", *grace)
	srv.Shutdown() // end dispatch streams first so Shutdown below can drain
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	if err := hs.Shutdown(shutdownCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("pfaird: forced close: %v", err)
	}
	log.Printf("pfaird: bye")
}
