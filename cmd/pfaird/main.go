// Command pfaird serves the multi-tenant Pfair scheduling service over
// HTTP: tenants are isolated PD²-DVQ online executives, tasks are
// admission-checked against Σwt ≤ M, and dispatch decisions stream to
// followers as newline-delimited JSON. See internal/server for the API and
// TUTORIAL.md ("Running pfaird") for a curl walkthrough.
//
// Usage:
//
//	pfaird -addr :8080 -data-dir /var/lib/pfaird
//
// With -data-dir the daemon is durable: every tenant mutation is journaled
// to a write-ahead log before it is applied, and a restart rebuilds the
// registry — tenants, admitted tasks, virtual time, and the full dispatch
// history that ?from= stream replay serves — from the latest snapshot plus
// the log tail (TUTORIAL.md, "Restarting pfaird without losing tenants").
// Without it, state is in-memory only, as in PR 2.
//
// On SIGINT/SIGTERM the daemon drains: in-flight dispatch streams flush
// and terminate, the listener shuts down gracefully, and a durable daemon
// writes one final snapshot so the next boot replays nothing.
//
// Observability: /metrics serves latency histograms (submit→ack, journal
// append/fsync, dispatch lag in quanta) next to the counters,
// /v1/tenants/{id}/trace streams per-command lifecycle events as NDJSON
// (retention set by -trace-buffer), and -pprof (default on) mounts
// net/http/pprof under /debug/pprof/ on the same listener.
//
// Each tenant applies mutations on a single-writer event loop fed by a
// bounded submit ring (-submit-ring, default 256); a full ring answers
// 429 so overload surfaces as client backpressure instead of queue
// growth, while reads are served lock-free from published snapshots.
//
// With -autoscale the daemon runs an elastic-capacity control loop
// against itself: it scrapes its own per-tenant dispatch-lag histograms
// and grows or drain-shrinks each tenant's processor count within
// [-autoscale-min, -autoscale-max], with hysteresis, a per-tenant
// cooldown, and token-bucket admission on its own actions (DESIGN.md
// §15). Autoscaled resizes go through POST /v1/tenants/{id}/resize like
// manual ones, so they are journaled and replicated identically.
//
// With -follow <leader-url> the daemon runs as a read-only replica: it
// bootstraps from the leader's snapshot, tails the leader's journal over
// /v1/replication/log, and answers 503 to mutations until it is promoted
// (POST /v1/cluster/promote — usually by pfair-router on leader failure).
// See DESIGN.md §13 and TUTORIAL.md §6.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net"
	"net/http"
	"os/signal"
	"syscall"
	"time"

	"desyncpfair/internal/autoscale"
	"desyncpfair/internal/client"
	"desyncpfair/internal/cluster"
	"desyncpfair/internal/server"
)

// selfURL turns the bound listen address into a base URL the in-process
// autoscaler can dial; wildcard hosts dial back via loopback.
func selfURL(addr net.Addr) string {
	host, port, err := net.SplitHostPort(addr.String())
	if err != nil {
		return "http://" + addr.String()
	}
	if ip := net.ParseIP(host); host == "" || (ip != nil && ip.IsUnspecified()) {
		host = "127.0.0.1"
	}
	return "http://" + net.JoinHostPort(host, port)
}

type config struct {
	addr          string
	grace         time.Duration
	dataDir       string
	fsyncEvery    int
	fsyncMaxDelay time.Duration
	snapshotEvery int
	pprof         bool
	traceBuffer   int
	submitRing    int
	streamMaxLag  int64
	streamStall   time.Duration
	follow        string

	autoscale         bool
	autoscaleInterval time.Duration
	autoscaleMin      int
	autoscaleMax      int
	autoscaleCooldown time.Duration
}

func main() {
	var cfg config
	flag.StringVar(&cfg.addr, "addr", ":8080", "listen address")
	flag.DurationVar(&cfg.grace, "grace", 10*time.Second, "graceful shutdown timeout")
	flag.StringVar(&cfg.dataDir, "data-dir", "", "directory for the write-ahead log and snapshots (empty = in-memory only)")
	flag.IntVar(&cfg.fsyncEvery, "fsync-every", 64, "group-commit: fsync the journal once per this many records")
	flag.DurationVar(&cfg.fsyncMaxDelay, "fsync-max-delay", 100*time.Millisecond, "upper bound on how long a journaled record may wait for its fsync (0 disables the timer)")
	flag.IntVar(&cfg.snapshotEvery, "snapshot-every", 4096, "fold the journal into a snapshot after this many records")
	flag.BoolVar(&cfg.pprof, "pprof", true, "serve net/http/pprof profiles under /debug/pprof/")
	flag.IntVar(&cfg.traceBuffer, "trace-buffer", 4096, "per-tenant trace-ring retention in events (GET /v1/tenants/{id}/trace)")
	flag.IntVar(&cfg.submitRing, "submit-ring", 256, "per-tenant submit-ring capacity; a full ring answers 429 backpressure")
	flag.Int64Var(&cfg.streamMaxLag, "stream-max-lag", server.DefaultStreamMaxLag, "evict a following dispatch stream whose subscriber trails the tenant head by more than this many records (410 + resume hint; negative disables)")
	flag.DurationVar(&cfg.streamStall, "stream-stall", server.DefaultStreamStall, "sever a streamed connection whose single write blocks longer than this (negative disables)")
	flag.StringVar(&cfg.follow, "follow", "", "run as a read-only replica of the leader at this base URL (requires -data-dir)")
	flag.BoolVar(&cfg.autoscale, "autoscale", false, "watch per-tenant dispatch-lag histograms and resize tenant capacity automatically")
	flag.DurationVar(&cfg.autoscaleInterval, "autoscale-interval", 5*time.Second, "scrape/decide period of the autoscaler")
	flag.IntVar(&cfg.autoscaleMin, "autoscale-min", 1, "lower bound on autoscaled per-tenant M")
	flag.IntVar(&cfg.autoscaleMax, "autoscale-max", 64, "upper bound on autoscaled per-tenant M")
	flag.DurationVar(&cfg.autoscaleCooldown, "autoscale-cooldown", 30*time.Second, "per-tenant quiet period after an autoscaler action (doubled after 429 backpressure)")
	flag.Parse()

	if err := serve(context.Background(), cfg, nil); err != nil {
		log.Fatalf("pfaird: %v", err)
	}
}

// serve runs the daemon until ctx is cancelled or SIGINT/SIGTERM arrives.
// ready, if non-nil, is called with the bound address once the listener is
// up — tests use it with addr ":0".
func serve(ctx context.Context, cfg config, ready func(addr string)) error {
	var srv *server.Server
	var follower *cluster.Follower
	var err error
	if cfg.follow != "" && cfg.dataDir == "" {
		return errors.New("-follow requires -data-dir (a follower's journal is its promotion state)")
	}
	if cfg.dataDir != "" {
		maxDelay := cfg.fsyncMaxDelay
		if maxDelay == 0 {
			maxDelay = -1 // flag 0 = disabled; Options 0 = default
		}
		if cfg.follow != "" {
			log.Printf("pfaird: bootstrapping follower of %s", cfg.follow)
			if err := cluster.Bootstrap(cfg.dataDir, cfg.follow, nil, nil); err != nil {
				return err
			}
		}
		srv, err = server.Open(server.Options{
			DataDir:            cfg.dataDir,
			FsyncEvery:         cfg.fsyncEvery,
			FsyncMaxDelay:      maxDelay,
			SnapshotEvery:      cfg.snapshotEvery,
			TraceBuffer:        cfg.traceBuffer,
			SubmitRing:         cfg.submitRing,
			StreamMaxLag:       cfg.streamMaxLag,
			StreamStallTimeout: cfg.streamStall,
			Follower:           cfg.follow != "",
		})
		if err != nil {
			return err
		}
		if cfg.follow != "" {
			follower = cluster.StartFollower(srv, cfg.follow, nil)
			log.Printf("pfaird: following %s from LSN %d", cfg.follow, srv.AppliedLSN()+1)
		}
		rec := srv.Recovery()
		log.Printf("pfaird: recovered %d tenant(s) from %s (%d command(s) total, %d record(s) replayed, %d byte(s) truncated)",
			rec.Tenants, cfg.dataDir, rec.Commands, rec.RecordsReplayed, rec.TruncatedBytes)
		if rec.ReplayErrors > 0 || rec.DispatchMismatches > 0 {
			log.Printf("pfaird: WARNING: recovery degraded: %d replay error(s), %d dispatch mismatch(es)",
				rec.ReplayErrors, rec.DispatchMismatches)
		}
	} else {
		srv = server.New()
		srv.SetTraceBuffer(cfg.traceBuffer)
		srv.SetSubmitRing(cfg.submitRing)
		srv.SetStreamPolicy(cfg.streamMaxLag, cfg.streamStall)
	}
	if cfg.pprof {
		srv.EnablePprof()
	}

	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: srv.Handler()}

	ctx, stop := signal.NotifyContext(ctx, syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- hs.Serve(ln) }()
	log.Printf("pfaird listening on %s", ln.Addr())
	if ready != nil {
		ready(ln.Addr().String())
	}

	// The autoscaler is a loopback client of this daemon's own API: it
	// scrapes /metrics and posts resizes like any operator would, so the
	// capacity changes it makes are journaled, replicated, and visible
	// exactly like manual ones. On a follower every resize answers 503,
	// which the scaler treats as backpressure — it backs off until this
	// node is promoted, then takes over without a restart.
	if cfg.autoscale {
		scaler := autoscale.New(autoscale.Config{
			MinM:     cfg.autoscaleMin,
			MaxM:     cfg.autoscaleMax,
			Cooldown: cfg.autoscaleCooldown,
		}, client.New(selfURL(ln.Addr()), nil))
		log.Printf("pfaird: autoscaler on (every %s, M ∈ [%d, %d])",
			cfg.autoscaleInterval, cfg.autoscaleMin, cfg.autoscaleMax)
		go scaler.Run(ctx, cfg.autoscaleInterval, log.Printf)
	}

	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}

	log.Printf("pfaird: shutting down, draining streams (up to %s)", cfg.grace)
	if follower != nil {
		follower.Seal() // stop replicating before the final snapshot
	}
	srv.Shutdown() // end dispatch streams first so Shutdown below can drain
	shutdownCtx, cancel := context.WithTimeout(context.Background(), cfg.grace)
	defer cancel()
	if err := hs.Shutdown(shutdownCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("pfaird: forced close: %v", err)
	}
	// Final snapshot: the next boot starts from a compact directory with
	// nothing to replay.
	if err := srv.Close(); err != nil {
		log.Printf("pfaird: final snapshot failed: %v", err)
		return err
	}
	log.Printf("pfaird: bye")
	return nil
}
