package main

import (
	"testing"

	"desyncpfair/internal/rat"
)

func TestSoakSmall(t *testing.T) {
	agg := soak(20, 4, 7)
	if agg.violations != 0 {
		t.Fatalf("bound violations: %d", agg.violations)
	}
	if agg.histDVQ.Total == 0 || agg.histPDB.Total == 0 {
		t.Fatal("no subtasks recorded")
	}
	if rat.One.Less(agg.maxDVQ) || rat.One.Less(agg.maxPDB) {
		t.Fatalf("max tardiness DVQ=%s PDB=%s", agg.maxDVQ, agg.maxPDB)
	}
	if agg.histDVQ.Total != agg.subtasks {
		t.Errorf("histogram total %d != subtasks %d", agg.histDVQ.Total, agg.subtasks)
	}
}
