package main

import (
	"strings"
	"testing"

	"desyncpfair/internal/rat"
)

func TestSoakSmall(t *testing.T) {
	agg := soak(20, 4, 7)
	if agg.violations != 0 {
		t.Fatalf("bound violations: %d", agg.violations)
	}
	if agg.histDVQ.Total == 0 || agg.histPDB.Total == 0 {
		t.Fatal("no subtasks recorded")
	}
	if rat.One.Less(agg.maxDVQ) || rat.One.Less(agg.maxPDB) {
		t.Fatalf("max tardiness DVQ=%s PDB=%s", agg.maxDVQ, agg.maxPDB)
	}
	if agg.histDVQ.Total != agg.subtasks {
		t.Errorf("histogram total %d != subtasks %d", agg.histDVQ.Total, agg.subtasks)
	}
}

// Regression test for the exit-code contract: a soak that observes a bound
// violation must exit non-zero (a CI job only sees the exit code), and a
// clean soak must exit zero. The violating aggregates are fabricated —
// producing a real one would falsify the paper.
func TestReportExitCode(t *testing.T) {
	clean := result{maxDVQ: rat.New(1, 2), maxPDB: rat.One}
	var out strings.Builder
	if code := report(&out, 10, clean); code != 0 {
		t.Errorf("clean soak exits %d, want 0\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "held in every trial") {
		t.Errorf("clean report lacks success line:\n%s", out.String())
	}

	cases := map[string]result{
		"counted violation":     {maxDVQ: rat.One, maxPDB: rat.One, violations: 3},
		"uncounted DVQ maximum": {maxDVQ: rat.New(3, 2), maxPDB: rat.One},
		"uncounted PDB maximum": {maxDVQ: rat.One, maxPDB: rat.New(5, 4)},
	}
	for name, agg := range cases {
		var buf strings.Builder
		if code := report(&buf, 10, agg); code != 1 {
			t.Errorf("%s: exits %d, want 1\n%s", name, code, buf.String())
		}
		if !strings.Contains(buf.String(), "BOUND VIOLATIONS") {
			t.Errorf("%s: report lacks violation line:\n%s", name, buf.String())
		}
	}
}
