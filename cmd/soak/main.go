// Command soak is the large-scale statistical validator: it hammers the
// paper's two tardiness theorems with as many random feasible GIS systems
// and yield behaviours as you give it time for, in parallel, and reports a
// tardiness histogram plus the largest tardiness ever observed. Any
// observation above one quantum would falsify Theorem 2 or 3 (and this
// reproduction); the binary exits non-zero in that case.
//
// Usage:
//
//	soak -trials 2000 -workers 8 -seed 1
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"runtime"

	"desyncpfair/internal/analysis"
	"desyncpfair/internal/core"
	"desyncpfair/internal/exp"
	"desyncpfair/internal/gen"
	"desyncpfair/internal/rat"
	"desyncpfair/internal/sched"
)

type result struct {
	histDVQ, histPDB analysis.Histogram
	maxDVQ, maxPDB   rat.Rat
	violations       int
	subtasks         int
}

func main() {
	trials := flag.Int("trials", 500, "number of random systems per engine")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "parallel workers")
	seed := flag.Int64("seed", 1, "base seed")
	flag.Parse()

	agg := soak(*trials, *workers, *seed)
	os.Exit(report(os.Stdout, *trials, agg))
}

// report prints the soak summary and returns the process exit code: 1 when
// any trial violated the one-quantum bound — whether it was counted as a
// per-trial violation or only shows in the aggregated maxima — else 0. It
// exists as a function (rather than inline in main) so the non-zero-exit
// contract is regression-tested; a soak whose failures only reach the log
// is invisible to CI.
func report(w io.Writer, trials int, agg result) int {
	fmt.Fprintf(w, "systems per engine : %d\n", trials)
	fmt.Fprintf(w, "subtasks scheduled : %d (×2 engines)\n", agg.subtasks)
	fmt.Fprintf(w, "PD²-DVQ  tardiness : max %-9s %s\n", agg.maxDVQ, agg.histDVQ)
	fmt.Fprintf(w, "PD^B     tardiness : max %-9s %s\n", agg.maxPDB, agg.histPDB)
	if agg.violations > 0 || rat.One.Less(agg.maxDVQ) || rat.One.Less(agg.maxPDB) {
		fmt.Fprintf(w, "BOUND VIOLATIONS   : %d — Theorems 2/3 falsified?!\n", agg.violations)
		return 1
	}
	fmt.Fprintln(w, "bound ≤ 1 quantum  : held in every trial (Theorems 2 and 3)")
	return 0
}

// soak fans the trial seeds out over exp.Sweep's worker pool and merges
// the per-trial results in seed order, so the aggregate is deterministic
// for a given (trials, seed) regardless of worker count.
func soak(trials, workers int, seed int64) result {
	seeds := make([]int64, trials)
	for t := range seeds {
		seeds[t] = seed + int64(t)
	}
	results, err := exp.Sweep(workers, seeds, func(s int64) (result, error) {
		local := result{maxDVQ: rat.Zero, maxPDB: rat.Zero}
		runOne(s, &local)
		return local, nil
	})
	if err != nil { // unreachable: runOne panics rather than erroring
		panic(err)
	}
	agg := result{maxDVQ: rat.Zero, maxPDB: rat.Zero}
	for _, r := range results {
		agg.histDVQ.Merge(r.histDVQ)
		agg.histPDB.Merge(r.histPDB)
		agg.maxDVQ = rat.Max(agg.maxDVQ, r.maxDVQ)
		agg.maxPDB = rat.Max(agg.maxPDB, r.maxPDB)
		agg.violations += r.violations
		agg.subtasks += r.subtasks
	}
	return agg
}

// runOne draws one random full-utilization GIS system plus yield model and
// runs both engines.
func runOne(seed int64, acc *result) {
	rng := rand.New(rand.NewSource(seed))
	m := 2 + rng.Intn(7) // 2..8 processors
	q := int64(6 + rng.Intn(10))
	n := m + 1 + rng.Intn(2*m)
	for int64(n) > int64(m)*q {
		n--
	}
	ws := gen.GridWeights(rng, n, q, int64(m)*q, gen.WeightClass(rng.Intn(3)))
	sys := gen.System(rng, ws, gen.SystemOptions{
		Horizon:    int64(2+rng.Intn(3)) * q,
		JitterProb: rng.Intn(30),
		MaxJitter:  2,
		OmitProb:   rng.Intn(20),
	})
	var y sched.YieldFn
	switch seed % 4 {
	case 0:
		y = sched.FullCost
	case 1:
		y = gen.UniformYield(seed, 16)
	case 2:
		y = gen.BimodalYield(seed, 50, 16)
	default:
		y = gen.AdversarialYield(rat.New(1, 64), nil)
	}

	dvq, err := core.RunDVQ(sys, core.DVQOptions{M: m, Yield: y})
	if err != nil {
		panic(err) // a random feasible system must always schedule
	}
	acc.histDVQ.Merge(analysis.TardinessHistogram(dvq))
	acc.maxDVQ = rat.Max(acc.maxDVQ, dvq.MaxTardiness())
	acc.subtasks += dvq.Len()
	if rat.One.Less(dvq.MaxTardiness()) {
		acc.violations++
	}

	pdb, err := core.RunPDB(sys, core.PDBOptions{M: m, Yield: y})
	if err != nil {
		panic(err)
	}
	acc.histPDB.Merge(analysis.TardinessHistogram(pdb.Schedule))
	acc.maxPDB = rat.Max(acc.maxPDB, pdb.Schedule.MaxTardiness())
	if rat.One.Less(pdb.Schedule.MaxTardiness()) {
		acc.violations++
	}
}
